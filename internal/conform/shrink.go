package conform

import "time"

// shrinkCandidates yields parameter sets one step smaller than p along each
// dimension, most-impactful first. Thread/transaction/op counts dominate
// schedule-tree size, so they shrink before box or depth counts.
func shrinkCandidates(p Params) []Params {
	var out []Params
	dec := func(f func(*Params)) {
		q := p
		f(&q)
		out = append(out, q)
	}
	if p.Threads > 1 {
		dec(func(q *Params) { q.Threads-- })
	}
	if p.TxPerThread > 1 {
		dec(func(q *Params) { q.TxPerThread-- })
	}
	if p.OpsPerTx > 2 {
		dec(func(q *Params) { q.OpsPerTx-- })
	}
	if p.MaxFutures > 1 {
		dec(func(q *Params) { q.MaxFutures-- })
	}
	if p.Depth > 1 {
		dec(func(q *Params) { q.Depth-- })
	}
	if p.Boxes > 1 {
		dec(func(q *Params) { q.Boxes-- })
	}
	return out
}

// searchSmall looks for a violation of the reduced program within a small
// budget: a DFS slice first (small programs are often exhaustible), then a
// PCT slice.
func searchSmall(p Params, budget int, timeout time.Duration) *Violation {
	if v, st := ExploreDFS(p, budget/2, timeout); v != nil {
		return v
	} else if st.Executions < budget/2 {
		// DFS exhausted the schedule tree: no violation exists for these
		// parameters, skip the PCT pass.
		return nil
	}
	v, _ := ExplorePCT(p, budget/2, 3, timeout)
	return v
}

// Shrink greedily reduces a violation's program parameters while a violation
// (of any kind) remains findable within perCandidateBudget executions,
// returning the smallest repro found. The result's trace replays the
// violation deterministically (callers can confirm with Replay).
func Shrink(v *Violation, perCandidateBudget int, timeout time.Duration) *Violation {
	cur := v
	for {
		improved := false
		for _, cand := range shrinkCandidates(cur.Params) {
			if w := searchSmall(cand, perCandidateBudget, timeout); w != nil {
				cur = w
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}
