// Package conform is a deterministic schedule-exploration harness for the
// WTF-TM engine, with the FSG polygraph as its conformance oracle.
//
// The harness installs a cooperative scheduler (scheduler.go) through the
// hook points of internal/core and internal/mvstm, so that exactly one
// goroutine of a generated transactional-futures program (program.go) runs
// at a time and every interleaving decision is made by a pluggable Policy.
// Two policies drive exploration: a seeded PCT-style randomized scheduler
// and a bounded exhaustive DFS over schedule prefixes (explore.go). Every
// explored execution's recorded operation log is converted by fsg.FromLog
// and checked for serializability with the polygraph oracle; a violating
// schedule is shrunk (shrink.go) to a minimal parameter set and replayed
// from its trace to confirm determinism.
//
// cmd/wtfconform is the CLI front end; scripts/ci.sh runs a fixed-seed smoke
// budget, and building with -tags conform_fault weakens the engine's
// backward validation to prove the oracle actually detects violations.
package conform

import (
	"fmt"
	"strings"
	"time"

	"wtftm/internal/core"
	"wtftm/internal/fsg"
	"wtftm/internal/history"
)

// Violation describes a schedule under which the engine produced a
// non-serializable (or wedged) execution, with everything needed to replay
// it: the program parameters and the recorded schedule trace.
type Violation struct {
	Params Params
	Trace  []int
	// Kind is "fsg-cycle", "deadlock", or "log-error".
	Kind   string
	Detail string
	Log    []history.Op
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s under %s/%s seed=%d threads=%d txns=%d ops=%d boxes=%d futures=%d depth=%d\n",
		v.Kind, v.Params.Ordering, v.Params.Atomicity, v.Params.Seed,
		v.Params.Threads, v.Params.TxPerThread, v.Params.OpsPerTx,
		v.Params.Boxes, v.Params.MaxFutures, v.Params.Depth)
	fmt.Fprintf(&b, "  detail: %s\n", v.Detail)
	fmt.Fprintf(&b, "  trace (%d choices): %s\n", len(v.Trace), formatTrace(v.Trace))
	return b.String()
}

func formatTrace(tr []int) string {
	parts := make([]string, len(tr))
	for i, c := range tr {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// semOf maps the engine ordering to the FSG semantics variant.
func semOf(o core.Ordering) fsg.Semantics {
	if o == core.SO {
		return fsg.SOsem
	}
	return fsg.WOsem
}

// CheckLog runs the FSG oracle over a recorded engine log: convert with
// fsg.FromLog, build the polygraph under the ordering's semantics, and
// search for an acyclic bipath selection. It returns a non-empty diagnosis
// for non-serializable logs, and an error for logs the converter rejects
// (which the harness also treats as a failure — the engine wrote them).
func CheckLog(ops []history.Op, ord core.Ordering) (diag string, err error) {
	h, err := fsg.FromLog(ops)
	if err != nil {
		return "", err
	}
	p, err := fsg.Build(h, semOf(ord))
	if err != nil {
		return "", err
	}
	if p.Acyclic() {
		return "", nil
	}
	return fmt.Sprintf("FSG not acyclic under any bipath selection (%d vertices, %d edges, %d bipaths)",
		len(p.Vertices()), p.NumEdges(), p.NumBipaths()), nil
}

// check classifies one execution, returning nil when it conforms.
func check(p Params, ex Execution) *Violation {
	if ex.Deadlock {
		return &Violation{
			Params: p, Trace: Indices(ex.Trace), Kind: "deadlock",
			Detail: "no runnable task before all tasks finished (or watchdog expired)",
			Log:    ex.Log,
		}
	}
	diag, err := CheckLog(ex.Log, p.Ordering)
	if err != nil {
		return &Violation{
			Params: p, Trace: Indices(ex.Trace), Kind: "log-error",
			Detail: err.Error(), Log: ex.Log,
		}
	}
	if diag != "" {
		return &Violation{
			Params: p, Trace: Indices(ex.Trace), Kind: "fsg-cycle",
			Detail: diag, Log: ex.Log,
		}
	}
	return nil
}

// Replay re-runs a violation's schedule from its recorded trace and reports
// whether the execution is deterministic (two runs, identical logs) and
// whether the violation reproduces.
func Replay(v *Violation, timeout time.Duration) (reproduced, deterministic bool) {
	ex1 := Run(v.Params, NewTracePolicy(v.Trace), timeout)
	ex2 := Run(v.Params, NewTracePolicy(v.Trace), timeout)
	deterministic = logsEqual(ex1.Log, ex2.Log)
	reproduced = check(v.Params, ex1) != nil
	return reproduced, deterministic
}

func logsEqual(a, b []history.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		x.Seq, y.Seq = 0, 0
		if x != y {
			return false
		}
	}
	return true
}
