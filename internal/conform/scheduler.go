package conform

import (
	"runtime"
	"sync"
	"time"

	"wtftm/internal/sched"
)

// taskState is the scheduler-side lifecycle of a managed goroutine.
type taskState int

const (
	tsReady   taskState = iota // runnable, waiting for the baton
	tsRunning                  // holds the baton
	tsParked                   // waiting on a ready-predicate
	tsDone                     // called TaskEnd
)

// task is one managed goroutine. gate is a 1-buffered baton channel: a
// receive grants the right to run until the next hook point.
type task struct {
	id    int
	gate  chan struct{}
	state taskState
	ready func() bool // set while parked
}

// wake hands t a baton token. Non-blocking: gate is 1-buffered and in normal
// operation at most one token is ever outstanding, so a full buffer can only
// mean a detach already woke the task — dropping the send is then correct.
func (t *task) wake() {
	select {
	case t.gate <- struct{}{}:
	default:
	}
}

// Choice records one scheduling decision: how many tasks were enabled and
// which one (by position in the sorted enabled list) was chosen. A sequence
// of Choices is a complete, replayable encoding of a schedule.
type Choice struct {
	Enabled int
	Index   int
}

// Policy decides, at each scheduling point, which enabled task runs next.
// enabled lists task ids in ascending order; the return value is an index
// into enabled (out-of-range values are clamped). Implementations must be
// deterministic functions of their own state and the arguments.
type Policy interface {
	Choose(step int, enabled []int) int
}

// Scheduler serializes the goroutines of one program execution and picks
// every interleaving decision through a Policy. It implements sched.Hook.
//
// Exactly one managed task executes engine code at a time; control transfers
// only inside Yield/Park/TaskBegin/TaskEnd. The schedule is therefore fully
// determined by the Policy's choices, which the scheduler records as a trace
// for replay and systematic exploration.
type Scheduler struct {
	policy  Policy
	timeout time.Duration

	mu            sync.Mutex
	cond          *sync.Cond
	tasks         []*task
	cur           *task
	pendingSpawns int
	live          int // registered, not yet done
	started       bool
	trace         []Choice
	detached      bool
	deadlock      bool

	doneOnce sync.Once
	doneCh   chan struct{}
}

// Result summarizes one completed (or abandoned) execution.
type Result struct {
	// Trace is the recorded schedule: one Choice per scheduling decision.
	Trace []Choice
	// Deadlock is true when no task was runnable (or the watchdog fired)
	// while unfinished tasks remained; the execution was then detached and
	// its log is not trustworthy evidence of an engine bug by itself.
	Deadlock bool
}

// NewScheduler creates a scheduler driving decisions through policy. timeout
// bounds the whole execution; past it the watchdog detaches every task so
// the test process cannot hang (a fired watchdog reports as Deadlock).
func NewScheduler(policy Policy, timeout time.Duration) *Scheduler {
	s := &Scheduler{policy: policy, timeout: timeout, doneCh: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Spawn registers fn as a managed task and starts its goroutine. It returns
// once the task is registered (but not yet running), so task ids follow
// Spawn order deterministically. Call before Wait.
func (s *Scheduler) Spawn(fn func()) {
	s.mu.Lock()
	s.pendingSpawns++
	s.mu.Unlock()
	go func() {
		s.TaskBegin()
		defer s.TaskEnd()
		fn()
	}()
	s.mu.Lock()
	for s.pendingSpawns > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Wait hands the baton to the first task and blocks until every managed task
// ended (or the watchdog gave up on a wedged execution).
func (s *Scheduler) Wait() Result {
	var watchdog *time.Timer
	if s.timeout > 0 {
		watchdog = time.AfterFunc(s.timeout, func() {
			s.mu.Lock()
			if s.live > 0 && !s.detached {
				s.deadlock = true
				s.detachLocked()
			}
			s.mu.Unlock()
		})
	}
	s.mu.Lock()
	s.started = true
	for s.pendingSpawns > 0 {
		s.cond.Wait()
	}
	if s.live == 0 {
		s.mu.Unlock()
		s.finish()
	} else {
		s.dispatchLocked() // unlocks
	}
	<-s.doneCh
	if watchdog != nil {
		watchdog.Stop()
	}
	s.mu.Lock()
	res := Result{Trace: s.trace, Deadlock: s.deadlock}
	s.mu.Unlock()
	return res
}

func (s *Scheduler) finish() { s.doneOnce.Do(func() { close(s.doneCh) }) }

// enabledLocked lists runnable tasks: ready ones plus parked ones whose
// predicate holds. Ids ascend, so the listing is deterministic.
func (s *Scheduler) enabledLocked() []int {
	var out []int
	for _, t := range s.tasks {
		switch t.state {
		case tsReady:
			out = append(out, t.id)
		case tsParked:
			if t.ready() {
				out = append(out, t.id)
			}
		}
	}
	return out
}

// pickLocked makes one scheduling decision. It returns nil when no task is
// enabled (completion if live == 0, deadlock otherwise).
func (s *Scheduler) pickLocked() *task {
	for s.pendingSpawns > 0 {
		s.cond.Wait()
	}
	enabled := s.enabledLocked()
	if len(enabled) == 0 {
		return nil
	}
	idx := s.policy.Choose(len(s.trace), enabled)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(enabled) {
		idx = len(enabled) - 1
	}
	s.trace = append(s.trace, Choice{Enabled: len(enabled), Index: idx})
	return s.tasks[enabled[idx]]
}

// dispatchLocked picks the next task and sends it the baton. The scheduler
// lock is released in all paths. Caller must not hold the baton.
func (s *Scheduler) dispatchLocked() {
	next := s.pickLocked()
	if s.detached {
		s.mu.Unlock()
		return
	}
	if next == nil {
		if s.live > 0 {
			s.deadlock = true
			s.detachLocked()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.finish()
		return
	}
	s.cur = next
	next.state = tsRunning
	next.ready = nil
	s.mu.Unlock()
	next.wake()
}

// handoffLocked transfers the baton away from t (the current task, already
// moved to tsReady or tsParked by the caller) and blocks t until it is
// scheduled again or the execution detached. Unlocks in all paths.
func (s *Scheduler) handoffLocked(t *task) {
	next := s.pickLocked()
	if s.detached {
		s.mu.Unlock()
		return
	}
	if next == nil {
		if s.live > 0 {
			s.deadlock = true
			s.detachLocked()
		} else {
			// Cannot happen while t itself is live, but keep the invariant.
			s.finish()
		}
		s.mu.Unlock()
		return
	}
	if next == t {
		t.state = tsRunning
		t.ready = nil
		s.mu.Unlock()
		return
	}
	s.cur = next
	next.state = tsRunning
	next.ready = nil
	s.mu.Unlock()
	next.wake()
	<-t.gate
}

// detachLocked abandons deterministic control: every blocked task gets a
// baton token and subsequent hook calls become (near) no-ops, letting the
// goroutines drain through the normal engine paths.
func (s *Scheduler) detachLocked() {
	s.detached = true
	for _, t := range s.tasks {
		if t.state != tsDone {
			select {
			case t.gate <- struct{}{}:
			default:
			}
		}
	}
	s.cond.Broadcast()
	s.finish()
}

// Yield implements sched.Hook: a preemption point in the running task.
func (s *Scheduler) Yield(sched.Point, string) {
	s.mu.Lock()
	if s.detached {
		s.mu.Unlock()
		return
	}
	t := s.cur
	t.state = tsReady
	s.handoffLocked(t)
}

// Park implements sched.Hook: the running task cannot proceed until ready()
// holds. The scheduler only re-enables the task once the predicate is true,
// so a chosen task can always make progress.
func (s *Scheduler) Park(ready func() bool) {
	s.mu.Lock()
	if s.detached {
		s.mu.Unlock()
		s.spinUntil(ready)
		return
	}
	t := s.cur
	t.state = tsParked
	t.ready = ready
	s.handoffLocked(t)
	if s.isDetached() {
		s.spinUntil(ready)
	}
}

// spinUntil is the detached-mode fallback for Park: poll the predicate with
// backoff, giving up (and killing the goroutine) if the execution is truly
// wedged so the process survives to report the deadlock.
func (s *Scheduler) spinUntil(ready func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !ready() {
		if time.Now().After(deadline) {
			runtime.Goexit()
		}
		runtime.Gosched()
		time.Sleep(20 * time.Microsecond)
	}
}

func (s *Scheduler) isDetached() bool {
	s.mu.Lock()
	d := s.detached
	s.mu.Unlock()
	return d
}

// SpawnExpected implements sched.Hook: the running task is about to start a
// goroutine that will call TaskBegin. Scheduling pauses until it registers.
func (s *Scheduler) SpawnExpected() {
	s.mu.Lock()
	s.pendingSpawns++
	s.mu.Unlock()
}

// TaskBegin implements sched.Hook: register the calling goroutine as a
// managed task and block until it is first scheduled.
func (s *Scheduler) TaskBegin() {
	s.mu.Lock()
	t := &task{id: len(s.tasks), gate: make(chan struct{}, 1), state: tsReady}
	s.tasks = append(s.tasks, t)
	s.pendingSpawns--
	s.live++
	detached := s.detached
	s.cond.Broadcast()
	s.mu.Unlock()
	if detached {
		return
	}
	<-t.gate
}

// TaskEnd implements sched.Hook: the calling task makes no further hook
// calls. The baton moves on without blocking the caller.
func (s *Scheduler) TaskEnd() {
	s.mu.Lock()
	s.live--
	if s.detached {
		if s.live == 0 {
			s.mu.Unlock()
			s.finish()
			return
		}
		s.mu.Unlock()
		return
	}
	t := s.cur
	t.state = tsDone
	if s.live == 0 && s.pendingSpawns == 0 {
		s.mu.Unlock()
		s.finish()
		return
	}
	s.dispatchLocked()
}
