//go:build !conform_fault

package conform

import (
	"testing"
	"time"

	"wtftm/internal/core"
)

const testTimeout = 10 * time.Second

// TestDeterministicReplay pins down the harness's core guarantee: the same
// policy over the same program yields bit-identical logs and traces, and a
// recorded trace replays the execution exactly.
func TestDeterministicReplay(t *testing.T) {
	p := Params{
		Ordering: core.WO, Atomicity: core.LAC,
		Threads: 2, TxPerThread: 2, OpsPerTx: 5, Boxes: 2, MaxFutures: 2, Depth: 2,
		Seed: 99,
	}
	ex1 := Run(p, NewPCTPolicy(5, 3, 512), testTimeout)
	ex2 := Run(p, NewPCTPolicy(5, 3, 512), testTimeout)
	if ex1.Deadlock || ex2.Deadlock {
		t.Fatal("unexpected deadlock")
	}
	if !logsEqual(ex1.Log, ex2.Log) {
		t.Fatalf("same policy, different logs: %d vs %d ops", len(ex1.Log), len(ex2.Log))
	}
	if len(ex1.Log) == 0 {
		t.Fatal("empty log")
	}
	// Trace replay reproduces the PCT-chosen schedule.
	ex3 := Run(p, NewTracePolicy(Indices(ex1.Trace)), testTimeout)
	if !logsEqual(ex1.Log, ex3.Log) {
		t.Fatalf("trace replay diverged: %d vs %d ops", len(ex1.Log), len(ex3.Log))
	}
}

// TestDFSBranches checks the exhaustive explorer actually enumerates more
// than one schedule for a program with a future (i.e. the hook points create
// genuine scheduling choices) and that the tree is finite.
func TestDFSBranches(t *testing.T) {
	branched := false
	for seed := int64(1); seed <= 8 && !branched; seed++ {
		p := Params{
			Ordering: core.WO, Atomicity: core.LAC,
			Threads: 1, TxPerThread: 1, OpsPerTx: 5, Boxes: 2, MaxFutures: 2, Depth: 1,
			Seed: seed,
		}
		v, st := ExploreDFS(p, 2000, testTimeout)
		if v != nil {
			t.Fatalf("clean engine produced a violation:\n%s", v)
		}
		if st.Executions >= 2000 {
			t.Fatalf("seed %d: schedule tree not exhausted within budget", seed)
		}
		if st.Executions > 1 {
			branched = true
		}
	}
	if !branched {
		t.Fatal("no seed produced a branching schedule tree")
	}
}

// TestSweepClean runs the fixed-seed smoke sweep across all four semantics
// combinations: a correct engine must show zero violations. This is the same
// sweep scripts/ci.sh runs through cmd/wtfconform (which, built with
// -tags conform_fault, must instead find a violation — see fault_test.go).
func TestSweepClean(t *testing.T) {
	for _, ord := range []core.Ordering{core.WO, core.SO} {
		for _, atom := range []core.Atomicity{core.LAC, core.GAC} {
			for seed := int64(1); seed <= 6; seed++ {
				p := Params{
					Ordering: ord, Atomicity: atom,
					Threads: 2, TxPerThread: 1, OpsPerTx: 5, Boxes: 2, MaxFutures: 2, Depth: 1,
					Seed: seed,
				}
				if v, _ := ExplorePCT(p, 25, 3, testTimeout); v != nil {
					t.Fatalf("%v/%v seed %d:\n%s", ord, atom, seed, v)
				}
			}
		}
	}
}

// TestSchedulerSerializes checks the baton protocol directly: concurrent
// tasks hammering a plain (unsynchronized) counter through Yield points must
// never race, because only one managed task runs at a time.
func TestSchedulerSerializes(t *testing.T) {
	sc := NewScheduler(NewPCTPolicy(1, 2, 128), testTimeout)
	counter := 0
	for i := 0; i < 4; i++ {
		sc.Spawn(func() {
			for j := 0; j < 25; j++ {
				v := counter
				sc.Yield(0, "")
				counter = v + 1
			}
		})
	}
	res := sc.Wait()
	if res.Deadlock {
		t.Fatal("deadlock")
	}
	// With preemption between read and increment, lost updates are expected
	// — but data races are not (go test -race covers that). The counter must
	// still land in (0, 100].
	if counter <= 0 || counter > 100 {
		t.Fatalf("counter = %d", counter)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no scheduling decisions recorded")
	}
}

// TestParkWakesOnPredicate checks a parked task is only rescheduled once its
// predicate holds.
func TestParkWakesOnPredicate(t *testing.T) {
	sc := NewScheduler(NewTracePolicy(nil), testTimeout)
	ch := make(chan struct{})
	order := []string{}
	sc.Spawn(func() {
		sc.Park(func() bool {
			select {
			case <-ch:
				return true
			default:
				return false
			}
		})
		order = append(order, "waiter")
	})
	sc.Spawn(func() {
		order = append(order, "closer")
		close(ch)
	})
	if res := sc.Wait(); res.Deadlock {
		t.Fatal("deadlock")
	}
	if len(order) != 2 || order[0] != "closer" || order[1] != "waiter" {
		t.Fatalf("order = %v", order)
	}
}

// TestWatchdogRecoversDeadlock wedges a task on a never-true predicate and
// checks the watchdog detaches the execution and reports a deadlock rather
// than hanging the process.
func TestWatchdogRecoversDeadlock(t *testing.T) {
	sc := NewScheduler(NewTracePolicy(nil), 50*time.Millisecond)
	sc.Spawn(func() {
		sc.Park(func() bool { return false })
	})
	res := sc.Wait()
	if !res.Deadlock {
		t.Fatal("expected deadlock result")
	}
}
