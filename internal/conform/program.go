package conform

import (
	"math/rand"
	"strconv"
	"sync"
	"time"

	"wtftm/internal/core"
	"wtftm/internal/history"
	"wtftm/internal/mvstm"
)

// Params describes one generated transactional-futures program. The program
// is a pure function of Params: the same Params under the same schedule
// produce the same recorded log, which is what makes shrunk repros
// replayable from a seed.
type Params struct {
	Ordering  core.Ordering
	Atomicity core.Atomicity
	// Threads is the number of concurrent top-level transaction drivers.
	Threads int
	// TxPerThread is how many top-level transactions each driver runs.
	TxPerThread int
	// OpsPerTx is the length of each top-level transaction body.
	OpsPerTx int
	// Boxes is the number of shared boxes (small values force conflicts).
	Boxes int
	// MaxFutures bounds futures submitted per transaction body.
	MaxFutures int
	// Depth is the futures nesting depth (1 = futures submit no futures).
	Depth int
	// Seed derives every random decision the program makes.
	Seed int64
}

// Execution is the outcome of running one program under one schedule.
type Execution struct {
	Log      []history.Op
	Trace    []Choice
	Deadlock bool
}

// escPool holds committed escaping futures (GAC) handed across top-level
// transactions. Managed tasks run serialized so access is logically
// sequential; the mutex covers the detached-recovery mode only.
type escPool struct {
	mu   sync.Mutex
	futs []*core.Future
}

func (p *escPool) push(fs ...*core.Future) {
	p.mu.Lock()
	p.futs = append(p.futs, fs...)
	p.mu.Unlock()
}

func (p *escPool) pop(rng *rand.Rand) *core.Future {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.futs) == 0 {
		return nil
	}
	i := rng.Intn(len(p.futs))
	f := p.futs[i]
	p.futs = append(p.futs[:i], p.futs[i+1:]...)
	return f
}

// progSeed mixes the program seed with a thread/transaction coordinate
// (splitmix64 finalizer) so every body has an independent random stream.
func progSeed(seed int64, th, txn int) int64 {
	z := uint64(seed) ^ (uint64(th)+1)*0x9e3779b97f4a7c15 ^ (uint64(txn)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes the program described by p under the schedule chosen by pol
// and returns the recorded log plus the schedule trace. timeout bounds the
// execution via the scheduler watchdog.
func Run(p Params, pol Policy, timeout time.Duration) Execution {
	stm := mvstm.New()
	rec := history.NewRecorder()
	sc := NewScheduler(pol, timeout)
	stm.SetSchedHook(sc)
	sys := core.New(stm, core.Options{
		Ordering:   p.Ordering,
		Atomicity:  p.Atomicity,
		MaxRetries: 64,
		Recorder:   rec,
		Hook:       sc,
	})
	boxes := make([]*mvstm.VBox, p.Boxes)
	for i := range boxes {
		boxes[i] = stm.NewBoxNamed("x"+strconv.Itoa(i), 0)
	}
	pool := &escPool{}

	for th := 0; th < p.Threads; th++ {
		th := th
		sc.Spawn(func() { driveThread(sys, p, th, boxes, pool) })
	}
	res := sc.Wait()
	return Execution{Log: rec.Ops(), Trace: res.Trace, Deadlock: res.Deadlock}
}

// driveThread runs one driver: TxPerThread top-level transactions, each a
// deterministic function of its progSeed. Under GAC a committed
// transaction's unevaluated futures are pushed to the shared pool and later
// transactions evaluate popped foreign futures.
func driveThread(sys *core.System, p Params, th int, boxes []*mvstm.VBox, pool *escPool) {
	for txn := 0; txn < p.TxPerThread; txn++ {
		seed := progSeed(p.Seed, th, txn)
		var foreign *core.Future
		if p.Atomicity == core.GAC && txn > 0 {
			foreign = pool.pop(rand.New(rand.NewSource(seed)))
		}
		var escaped []*core.Future
		err := sys.Atomic(func(tx *core.Tx) error {
			// Fresh rng per attempt: retries replay the identical op sequence.
			rng := rand.New(rand.NewSource(seed))
			escaped = escaped[:0]
			if foreign != nil {
				tx.Evaluate(foreign) // result/error immaterial to the history
			}
			var local []*core.Future
			evaluated := make(map[*core.Future]bool)
			for i := 0; i < p.OpsPerTx; i++ {
				switch r := rng.Intn(100); {
				case r < 30:
					tx.Read(boxes[rng.Intn(len(boxes))])
				case r < 60:
					tx.Write(boxes[rng.Intn(len(boxes))], opVal(th, txn, i))
				case r < 80 && len(local) < p.MaxFutures:
					local = append(local, tx.Submit(futureBody(boxes, rng.Int63(), p.Depth)))
				default:
					if len(local) > 0 {
						f := local[rng.Intn(len(local))]
						tx.Evaluate(f)
						evaluated[f] = true
					} else {
						tx.Read(boxes[rng.Intn(len(boxes))])
					}
				}
			}
			for _, f := range local {
				if !evaluated[f] {
					escaped = append(escaped, f)
				}
			}
			return nil
		})
		if err == nil && p.Atomicity == core.GAC {
			pool.push(escaped...)
		}
	}
}

// futureBody generates a deterministic future body: a short read/write mix
// with optional nested submissions while depth allows. Bodies are pure
// functions of their seed so re-executions replay identically.
func futureBody(boxes []*mvstm.VBox, seed int64, depth int) func(*core.Tx) (any, error) {
	return func(tx *core.Tx) (any, error) {
		rng := rand.New(rand.NewSource(seed))
		var local []*core.Future
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch r := rng.Intn(100); {
			case r < 40:
				tx.Read(boxes[rng.Intn(len(boxes))])
			case r < 80:
				tx.Write(boxes[rng.Intn(len(boxes))], int(seed%1000)*100+i)
			case depth > 1:
				local = append(local, tx.Submit(futureBody(boxes, rng.Int63(), depth-1)))
			default:
				if len(local) > 0 {
					tx.Evaluate(local[rng.Intn(len(local))])
				} else {
					tx.Read(boxes[rng.Intn(len(boxes))])
				}
			}
		}
		// Evaluate nested futures so LAC and GAC behave alike at this level.
		for _, f := range local {
			tx.Evaluate(f)
		}
		return nil, nil
	}
}

func opVal(th, txn, i int) int { return th*1_000_000 + txn*1_000 + i }
