// Package persist is wtfd's durability manager: one wal.Log plus a rolling
// pair of CRC-validated snapshots per shard, and the recovery procedure that
// rebuilds a shard as (latest valid snapshot) + (log suffix replay). The
// server talks to it through three callbacks — Source walks a shard's live
// entries for checkpointing, Restore installs a snapshot entry, Apply replays
// one committed WAL batch — so persist depends only on the wal file layer,
// never on the store or the STM.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path"
	"strconv"
	"strings"

	"wtftm/internal/wal"
)

// Snapshot file layout (integers big-endian, lengths uvarint):
//
//	8 bytes  magic "WTFSNAP1"
//	uint32   shard
//	uint64   seq     last WAL record the snapshot covers
//	uint64   count   entry count
//	count ×  entry:  uvarint klen, key, uvarint vlen, val
//	uint32   CRC32C  over every preceding byte
//
// Files are named snap-%016d.snap after their seq, written to a temp name,
// fsynced, renamed into place and dirsynced — a crash mid-write leaves the
// previous snapshot untouched.

const snapMagic = "WTFSNAP1"

// snapHeader is the fixed prefix: magic, shard, seq, count.
const snapHeader = 8 + 4 + 8 + 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSnapshot reports a snapshot file that failed validation.
var ErrBadSnapshot = errors.New("persist: invalid snapshot")

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[5:len(name)-5], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// snapEncoder accumulates the entry section of a snapshot while the shard
// lock is held; the file I/O happens later, outside the lock.
type snapEncoder struct {
	buf   []byte
	count uint64
}

func (e *snapEncoder) add(key string, val []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(key)))
	e.buf = append(e.buf, key...)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(val)))
	e.buf = append(e.buf, val...)
	e.count++
}

// writeSnapshot atomically installs a snapshot covering seq in dir.
func writeSnapshot(fsys wal.FS, dir string, shard int, seq uint64, enc *snapEncoder) error {
	hdr := make([]byte, 0, snapHeader+len(enc.buf)+4)
	hdr = append(hdr, snapMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(shard))
	hdr = binary.BigEndian.AppendUint64(hdr, seq)
	hdr = binary.BigEndian.AppendUint64(hdr, enc.count)
	body := append(hdr, enc.buf...)
	crc := crc32.Checksum(body, crcTable)
	body = binary.BigEndian.AppendUint32(body, crc)

	tmp := path.Join(dir, snapName(seq)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create %s: %w", tmp, err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("persist: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	final := path.Join(dir, snapName(seq))
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: rename %s: %w", final, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	return nil
}

// loadSnapshot finds the newest snapshot in dir that validates (magic, shard,
// CRC) and streams its entries to emit. Invalid newer snapshots are skipped
// in favour of older ones — the fallback the rolling pair exists for. Returns
// the covered seq and whether any snapshot was loaded.
func loadSnapshot(fsys wal.FS, dir string, shard int, emit func(key string, val []byte) error) (uint64, bool, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("persist: readdir %s: %w", dir, err)
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	for i := len(seqs) - 1; i >= 0; i-- { // ReadDir is sorted; walk newest-first
		seq := seqs[i]
		err := readSnapshot(fsys, path.Join(dir, snapName(seq)), shard, seq, emit)
		if err == nil {
			return seq, true, nil
		}
		if !errors.Is(err, ErrBadSnapshot) {
			return 0, false, err
		}
	}
	return 0, false, nil
}

// readSnapshot validates one snapshot file end-to-end (the CRC check streams
// the whole file before any entry is emitted) and then emits its entries.
func readSnapshot(fsys wal.FS, p string, shard int, seq uint64, emit func(key string, val []byte) error) error {
	f, err := fsys.OpenFile(p, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("%w: open: %v", ErrBadSnapshot, err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return fmt.Errorf("%w: read: %v", ErrBadSnapshot, err)
	}
	if len(data) < snapHeader+4 {
		return fmt.Errorf("%w: %d bytes", ErrBadSnapshot, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(tail) {
		return fmt.Errorf("%w: CRC mismatch", ErrBadSnapshot)
	}
	if string(body[:8]) != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if got := binary.BigEndian.Uint32(body[8:12]); got != uint32(shard) {
		return fmt.Errorf("%w: shard %d in shard-%d file", ErrBadSnapshot, got, shard)
	}
	if got := binary.BigEndian.Uint64(body[12:20]); got != seq {
		return fmt.Errorf("%w: seq %d in %s", ErrBadSnapshot, got, path.Base(p))
	}
	count := binary.BigEndian.Uint64(body[20:28])
	b := body[28:]
	for i := uint64(0); i < count; i++ {
		key, rest, err := snapBytes(b, wal.MaxBatchKeyLen)
		if err != nil {
			return fmt.Errorf("%w: entry %d key: %v", ErrBadSnapshot, i, err)
		}
		val, rest, err := snapBytes(rest, wal.MaxBatchValLen)
		if err != nil {
			return fmt.Errorf("%w: entry %d val: %v", ErrBadSnapshot, i, err)
		}
		b = rest
		if err := emit(string(key), val); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(b))
	}
	return nil
}

func snapBytes(b []byte, max uint64) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, errors.New("bad length")
	}
	if n > max {
		return nil, nil, fmt.Errorf("length %d > %d", n, max)
	}
	b = b[sz:]
	if uint64(len(b)) < n {
		return nil, nil, errors.New("truncated")
	}
	return b[:n], b[n:], nil
}

// pruneSnapshots removes snapshot files older than keepFrom (exclusive of
// the pair the manager retains).
func pruneSnapshots(fsys wal.FS, dir string, keepFrom uint64) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok && seq < keepFrom {
			if err := fsys.Remove(path.Join(dir, name)); err != nil {
				return err
			}
			removed = true
		}
		// Stray temp files from a crashed checkpoint are dead weight too.
		if strings.HasSuffix(name, ".tmp") {
			if err := fsys.Remove(path.Join(dir, name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fsys.SyncDir(dir)
	}
	return nil
}
