package persist

import (
	"fmt"
	"io"
	"os"
	"reflect"
	"testing"

	"wtftm/internal/wal"
)

// model is the reference store the tests recover into: shard → key → value.
type model []map[string]string

func newModel(shards int) model {
	m := make(model, shards)
	for i := range m {
		m[i] = make(map[string]string)
	}
	return m
}

func (m model) clone() model {
	out := make(model, len(m))
	for i, sh := range m {
		out[i] = make(map[string]string, len(sh))
		for k, v := range sh {
			out[i][k] = v
		}
	}
	return out
}

// opts builds Options wired to mutate dst.
func opts(fs wal.FS, dst model, segBytes int64, snapEvery int64, sync wal.SyncPolicy) Options {
	return Options{
		FS:            fs,
		Dir:           "data",
		Shards:        len(dst),
		Sync:          sync,
		SegmentBytes:  segBytes,
		SnapshotEvery: snapEvery,
		Source: func(shard int, emit func(string, []byte) error) error {
			for k, v := range dst[shard] {
				if err := emit(k, []byte(v)); err != nil {
					return err
				}
			}
			return nil
		},
		Restore: func(shard int, key string, val []byte) error {
			dst[shard][key] = string(val)
			return nil
		},
		Apply: func(shard int, seq uint64, payload []byte) error {
			return wal.DecodeBatch(payload, func(op wal.Op) error {
				switch op.Kind {
				case wal.OpPut:
					dst[shard][op.Key] = string(op.Val)
				case wal.OpDel:
					delete(dst[shard], op.Key)
				}
				return nil
			})
		},
	}
}

// appendPut logs one single-op put batch through the commit path.
func appendPut(t *testing.T, m *Manager, live model, shard int, key, val string) error {
	t.Helper()
	b := wal.AppendBatchHeader(nil, 1)
	b = wal.AppendPut(b, key, []byte(val))
	m.Lock(shard)
	_, err := m.Append(shard, b)
	if err == nil {
		live[shard][key] = val
	}
	m.Unlock(shard)
	if err != nil {
		return err
	}
	return m.Sync(shard)
}

func TestRecoverEmptyDir(t *testing.T) {
	fs := wal.NewMemFS()
	dst := newModel(4)
	m, err := Open(opts(fs, dst, 0, 0, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if len(dst[i]) != 0 {
			t.Fatalf("shard %d non-empty after empty recovery", i)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripWithCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	live := newModel(3)
	m, err := Open(opts(fs, live, 512, 0, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		sh := i % 3
		if err := appendPut(t, m, live, sh, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if i == 45 {
			for sh := range live {
				if err := m.Checkpoint(sh); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	want := live.clone()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	got := newModel(3)
	m2, err := Open(opts(fs, got, 512, 0, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !reflect.DeepEqual(model(got), want) {
		t.Fatalf("recovered state != written state\ngot:  %v\nwant: %v", got, want)
	}
	if m2.Stats().RecoveredRecords == 0 {
		t.Fatal("expected some records replayed past the checkpoint")
	}
}

// TestCheckpointCompacts verifies automatic checkpoints (SnapshotEvery)
// actually shrink the log and that recovery still sees everything.
func TestCheckpointCompacts(t *testing.T) {
	fs := wal.NewMemFS()
	live := newModel(1)
	m, err := Open(opts(fs, live, 256, 10, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := appendPut(t, m, live, 0, fmt.Sprintf("k%02d", i%20), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if i == 99 || i == 199 {
			// Deterministic compaction barrier: the second checkpoint
			// compacts through the first's seq regardless of how the async
			// SnapshotEvery kicks interleaved.
			if err := m.Checkpoint(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := live.clone()
	if err := m.Close(); err != nil { // waits for in-flight checkpoints
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Snapshots < 2 {
		t.Fatalf("Snapshots = %d, want ≥ 2", st.Snapshots)
	}
	if st.RemovedSegments == 0 {
		t.Fatal("checkpoints never compacted the log")
	}

	got := newModel(1)
	m2, err := Open(opts(fs, got, 256, 10, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !reflect.DeepEqual(model(got), want) {
		t.Fatalf("recovered state != written state after compaction\ngot:  %v\nwant: %v", got, want)
	}
}

// TestSnapshotFallback corrupts the newest snapshot and verifies recovery
// falls back to the older one plus a longer log replay, with identical state.
func TestSnapshotFallback(t *testing.T) {
	fs := wal.NewMemFS()
	live := newModel(1)
	m, err := Open(opts(fs, live, 1<<20, 0, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := appendPut(t, m, live, 0, fmt.Sprintf("k%02d", i), "a"); err != nil {
			t.Fatal(err)
		}
		if i == 9 || i == 19 {
			if err := m.Checkpoint(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := live.clone()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the newest snapshot (seq 20).
	dir := "data/shard-000"
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			newest = n // sorted ascending; last wins
		}
	}
	if newest == "" {
		t.Fatal("no snapshot written")
	}
	f, err := fs.OpenFile(dir+"/"+newest, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(snapHeader+2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := newModel(1)
	m2, err := Open(opts(fs, got, 1<<20, 0, wal.SyncGroup))
	if err != nil {
		t.Fatalf("recovery with corrupt newest snapshot: %v", err)
	}
	defer m2.Close()
	if !reflect.DeepEqual(model(got), want) {
		t.Fatalf("fallback recovery state mismatch\ngot:  %v\nwant: %v", got, want)
	}
}

// TestCrashPrefixProperty is the package-level crash sweep: arm a fault at
// every interesting op count, run traffic until the disk dies, crash, recover
// from the post-crash view, and require the recovered state to be a prefix of
// the synced-acknowledged sequence (never missing an acked write, never
// containing a corrupt one).
func TestCrashPrefixProperty(t *testing.T) {
	for _, sync := range []wal.SyncPolicy{wal.SyncGroup, wal.SyncAlways} {
		for fault := 1; fault <= 60; fault += 4 {
			for _, torn := range []int{0, 5} {
				name := fmt.Sprintf("%v/fault%d/torn%d", sync, fault, torn)
				fs := wal.NewMemFS()
				live := newModel(2)
				m, err := Open(opts(fs, live, 300, 12, sync))
				if err != nil {
					t.Fatal(err)
				}
				fs.FailAfter(wal.FaultAllOps, fault)

				// states[j] = model after the first j acked appends.
				states := []model{newModel(2)}
				acked := 0
				for i := 0; i < 80; i++ {
					sh := i % 2
					key, val := fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%d", i)
					if err := appendPut(t, m, live, sh, key, val); err != nil {
						break // disk died; everything acked so far must survive
					}
					next := states[len(states)-1].clone()
					next[sh][key] = val
					states = append(states, next)
					acked++
				}
				view := fs.CrashClone(torn)
				m.Close()

				got := newModel(2)
				m2, err := Open(opts(view, got, 300, 12, sync))
				if err != nil {
					t.Fatalf("%s: recovery: %v", name, err)
				}
				m2.Close()

				matched := -1
				for j := len(states) - 1; j >= 0; j-- {
					if reflect.DeepEqual(model(got), states[j]) {
						matched = j
						break
					}
				}
				if matched < acked {
					t.Fatalf("%s: recovered state matches prefix %d, but %d appends were acked durable", name, matched, acked)
				}
			}
		}
	}
}

// TestOSFSRoundTrip exercises the manager against the real file system once.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	live := newModel(2)
	o := opts(nil, live, 512, 5, wal.SyncGroup)
	o.Dir = dir
	m, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := appendPut(t, m, live, i%2, fmt.Sprintf("k%02d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	want := live.clone()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	got := newModel(2)
	o2 := opts(nil, got, 512, 5, wal.SyncGroup)
	o2.Dir = dir
	m2, err := Open(o2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !reflect.DeepEqual(model(got), want) {
		t.Fatalf("recovered state mismatch on OS fs\ngot:  %v\nwant: %v", got, want)
	}
}
