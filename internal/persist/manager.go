package persist

import (
	"errors"
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"wtftm/internal/wal"
)

// Options configures Open.
type Options struct {
	// FS is the file layer; nil means the real file system.
	FS wal.FS
	// Dir is the data directory; each shard gets Dir/shard-%03d.
	Dir string
	// Shards is the shard count; must match the server's.
	Shards int
	// Sync is the WAL fsync policy.
	Sync wal.SyncPolicy
	// SegmentBytes is the WAL rotation threshold (0 = wal default).
	SegmentBytes int64
	// SnapshotEvery triggers an async checkpoint after this many records
	// appended to a shard's log; 0 disables automatic checkpoints.
	SnapshotEvery int64

	// Source walks a shard's live entries (called with the shard's commit
	// lock held, so the walk is consistent with the log frontier).
	Source func(shard int, emit func(key string, val []byte) error) error
	// Restore installs one snapshot entry during recovery.
	Restore func(shard int, key string, val []byte) error
	// Apply replays one committed WAL batch payload during recovery.
	Apply func(shard int, seq uint64, payload []byte) error
}

// Stats is a point-in-time aggregate over all shards.
type Stats struct {
	wal.Stats
	// Snapshots counts snapshots written by this process.
	Snapshots int64
	// SnapshotErrors counts failed checkpoint attempts.
	SnapshotErrors int64
	// LastSnapshotSeq is the highest seq any durable snapshot covers.
	LastSnapshotSeq uint64
	// LastSnapshotUnixNano is the wall-clock completion time of the newest
	// checkpoint (0 if none this process); STATS reports its age.
	LastSnapshotUnixNano int64
	// RecoveredRecords counts WAL records replayed at Open.
	RecoveredRecords int64
}

// shardDur is one shard's durability state.
type shardDur struct {
	mu     sync.Mutex // commit-order lock: held across STM commit + log append
	ckptMu sync.Mutex // serializes whole checkpoints (async kick + sync calls)
	log    *wal.Log
	dir    string

	snapSeq     uint64 // newest durable snapshot's covered seq (under mu)
	prevSnapSeq uint64 // the retained older snapshot's seq (under mu)

	sinceCkpt   atomic.Int64
	ckptRunning atomic.Bool
}

// Manager owns per-shard WALs and snapshots. Lock/Append/Sync form the
// commit path; checkpoints run asynchronously; Close drains and syncs
// everything.
type Manager struct {
	opts   Options
	fs     wal.FS
	shards []*shardDur
	wg     sync.WaitGroup

	snaps       atomic.Int64
	snapErrs    atomic.Int64
	lastSnapSeq atomic.Uint64
	lastSnapNs  atomic.Int64
	recovered   atomic.Int64
}

// Open opens every shard's log, recovers state through the Restore and Apply
// callbacks (latest valid snapshot, then the log suffix), and returns a
// manager ready for the commit path.
func Open(opts Options) (*Manager, error) {
	if opts.Shards <= 0 {
		return nil, errors.New("persist: Shards must be positive")
	}
	if opts.Source == nil || opts.Restore == nil || opts.Apply == nil {
		return nil, errors.New("persist: Source, Restore and Apply are required")
	}
	m := &Manager{opts: opts, fs: opts.FS}
	if m.fs == nil {
		m.fs = wal.OSFS{}
	}
	m.shards = make([]*shardDur, opts.Shards)
	for i := range m.shards {
		s := &shardDur{dir: path.Join(opts.Dir, fmt.Sprintf("shard-%03d", i))}
		log, err := wal.Open(wal.Options{
			FS:           m.fs,
			Dir:          s.dir,
			SegmentBytes: opts.SegmentBytes,
			Sync:         opts.Sync,
		})
		if err != nil {
			m.closePartial(i)
			return nil, err
		}
		s.log = log
		if err := m.recoverShard(i, s); err != nil {
			log.Close()
			m.closePartial(i)
			return nil, err
		}
		m.shards[i] = s
	}
	return m, nil
}

func (m *Manager) closePartial(n int) {
	for _, s := range m.shards[:n] {
		if s != nil {
			s.log.Close()
		}
	}
}

// recoverShard rebuilds shard i: snapshot entries via Restore, then the log
// records past the snapshot via Apply. The replayed suffix must be contiguous
// from the snapshot seq — a gap means compaction outran every loadable
// snapshot (unrecoverable media damage), which is an error, not silence.
func (m *Manager) recoverShard(i int, s *shardDur) error {
	snapSeq, ok, err := loadSnapshot(m.fs, s.dir, i, func(key string, val []byte) error {
		return m.opts.Restore(i, key, val)
	})
	if err != nil {
		return err
	}
	if ok {
		s.snapSeq = snapSeq
		s.prevSnapSeq = snapSeq
		m.lastSnapSeq.Store(max(m.lastSnapSeq.Load(), snapSeq))
	}
	expect := snapSeq + 1
	err = s.log.Replay(snapSeq, func(seq uint64, payload []byte) error {
		if seq != expect {
			return fmt.Errorf("persist: shard %d: log gap at seq %d (want %d): snapshot lost", i, seq, expect)
		}
		expect++
		m.recovered.Add(1)
		return m.opts.Apply(i, seq, payload)
	})
	if err != nil {
		return err
	}
	// A snapshot newer than the whole log would make future appends replay-
	// invisible; checkpoint syncs the log before publishing, so this is
	// damage, not a normal crash.
	if last := s.log.LastSeq(); last < s.snapSeq {
		return fmt.Errorf("persist: shard %d: snapshot covers seq %d but log ends at %d", i, s.snapSeq, last)
	}
	return nil
}

// Lock acquires shard's commit-order lock. The caller holds it across the
// STM commit and the matching Append, so log order equals commit order.
func (m *Manager) Lock(shard int) { m.shards[shard].mu.Lock() }

// Unlock releases shard's commit-order lock.
func (m *Manager) Unlock(shard int) { m.shards[shard].mu.Unlock() }

// Append appends one committed batch to shard's log. Caller must hold
// Lock(shard). Durability on return follows the sync policy: under
// SyncAlways the record is durable; under SyncGroup call Sync before
// acknowledging.
func (m *Manager) Append(shard int, payload []byte) (uint64, error) {
	s := m.shards[shard]
	seq, err := s.log.Append(payload)
	if err != nil {
		return 0, err
	}
	if n := s.sinceCkpt.Add(1); m.opts.SnapshotEvery > 0 && n >= m.opts.SnapshotEvery {
		m.kickCheckpoint(shard, s)
	}
	return seq, nil
}

// Sync is shard's group-commit durability barrier (coalescing; see
// wal.Log.Sync). Call without holding Lock.
func (m *Manager) Sync(shard int) error { return m.shards[shard].log.Sync() }

// kickCheckpoint starts an async checkpoint for shard unless one is already
// running. Failures are counted, not fatal: the log keeps the data.
func (m *Manager) kickCheckpoint(shard int, s *shardDur) {
	if !s.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	s.sinceCkpt.Store(0)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer s.ckptRunning.Store(false)
		if err := m.checkpointShard(shard); err != nil {
			m.snapErrs.Add(1)
		}
	}()
}

// Checkpoint synchronously snapshots one shard and compacts its log. Safe to
// call concurrently with the commit path.
func (m *Manager) Checkpoint(shard int) error { return m.checkpointShard(shard) }

func (m *Manager) checkpointShard(shard int) error {
	s := m.shards[shard]
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Capture under the commit lock: entry set == log prefix 1..seq exactly.
	s.mu.Lock()
	seq := s.log.LastSeq()
	if seq == s.snapSeq {
		s.mu.Unlock()
		return nil
	}
	var enc snapEncoder
	err := m.opts.Source(shard, func(key string, val []byte) error {
		enc.add(key, val)
		return nil
	})
	s.mu.Unlock()
	if err != nil {
		return err
	}

	// The snapshot must never cover more than the durable log (recovery
	// replays from snapSeq and a shorter log would strand future appends
	// behind already-replayed seqs), so force the log through seq first.
	if err := s.log.Sync(); err != nil {
		return err
	}
	if err := writeSnapshot(m.fs, s.dir, shard, seq, &enc); err != nil {
		return err
	}

	s.mu.Lock()
	compactThrough := s.snapSeq // the snapshot that now becomes "previous"
	s.prevSnapSeq = s.snapSeq
	s.snapSeq = seq
	s.mu.Unlock()

	m.snaps.Add(1)
	m.lastSnapSeq.Store(max(m.lastSnapSeq.Load(), seq))
	m.lastSnapNs.Store(time.Now().UnixNano())

	// Retain the {previous, new} snapshot pair; the log keeps everything the
	// previous snapshot doesn't cover, so recovery can fall back one step.
	if err := pruneSnapshots(m.fs, s.dir, compactThrough); err != nil {
		return err
	}
	return s.log.RemoveThrough(compactThrough)
}

// LastSeq returns shard's newest appended seq.
func (m *Manager) LastSeq(shard int) uint64 { return m.shards[shard].log.LastSeq() }

// Close waits for in-flight checkpoints and closes every log (which fsyncs
// final segments under every policy — a graceful shutdown loses nothing).
func (m *Manager) Close() error {
	m.wg.Wait()
	var first error
	for _, s := range m.shards {
		if err := s.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats aggregates all shards' counters.
func (m *Manager) Stats() Stats {
	var out Stats
	for _, s := range m.shards {
		ls := s.log.Stats()
		out.AppendedRecords += ls.AppendedRecords
		out.AppendedBytes += ls.AppendedBytes
		out.Fsyncs += ls.Fsyncs
		out.Segments += ls.Segments
		out.RemovedSegments += ls.RemovedSegments
		out.TruncatedBytes += ls.TruncatedBytes
	}
	out.Snapshots = m.snaps.Load()
	out.SnapshotErrors = m.snapErrs.Load()
	out.LastSnapshotSeq = m.lastSnapSeq.Load()
	out.LastSnapshotUnixNano = m.lastSnapNs.Load()
	out.RecoveredRecords = m.recovered.Load()
	return out
}
