// Package client is the Go client for wtfd (see internal/server): a small
// pool of TCP connections, each carrying pipelined length-prefixed frames
// (internal/wire). Any number of goroutines may share one Client; calls on
// the same connection interleave on the wire and are matched back to their
// callers by request ID, so one slow request does not serialize the others.
//
// A connection that fails is redialed transparently on its next use: calls
// in flight on the broken connection return the transport error, later
// calls re-establish the connection (see TestReconnectAfterRestart).
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wtftm/internal/wire"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the connection-pool size; default 2. Calls are spread
	// round-robin; each connection pipelines independently.
	Conns int
	// DialTimeout bounds one connection attempt; default 5s.
	DialTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Conns <= 0 {
		out.Conns = 2
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	return out
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// ServerError reports a response the server answered with a non-OK status
// that the typed helpers cannot express in their results (StatusErr,
// StatusUnavailable, unexpected codes).
type ServerError struct {
	Status wire.Status
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: server returned %v: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("client: server returned %v", e.Status)
}

// Client is a pooled, pipelined wtfd client. Safe for concurrent use.
type Client struct {
	opts   Options
	closed atomic.Bool
	next   atomic.Uint64
	slots  []*slot
}

// slot is one pool position: a lazily dialed, replace-on-failure conn.
type slot struct {
	mu sync.Mutex
	c  *conn
}

// conn is one live TCP connection with a reader goroutine dispatching
// responses to waiting callers by request ID.
type conn struct {
	nc  net.Conn
	bw  *bufio.Writer
	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint32]chan wire.Response
	idSeq   uint32
	err     error // set once broken; guards new sends
}

// New creates a client. No connection is made until the first call.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{opts: opts, slots: make([]*slot, opts.Conns)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// Close closes every pooled connection; in-flight calls fail.
func (cl *Client) Close() {
	cl.closed.Store(true)
	for _, s := range cl.slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.fail(ErrClosed)
			s.c = nil
		}
		s.mu.Unlock()
	}
}

// acquire picks the next pool slot and returns its live connection,
// (re)dialing if the slot is empty or its connection has failed.
func (cl *Client) acquire() (*conn, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	s := cl.slots[cl.next.Add(1)%uint64(len(cl.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil && s.c.alive() {
		return s.c, nil
	}
	nc, err := net.DialTimeout("tcp", cl.opts.Addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &conn{nc: nc, bw: bufio.NewWriter(nc), pending: make(map[uint32]chan wire.Response)}
	go c.readLoop()
	s.c = c
	return c, nil
}

func (c *conn) alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil
}

// fail marks the connection broken and delivers err to every waiter.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range pending {
		close(ch) // receivers translate a closed channel into c.err
	}
}

func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		buf = payload[:0]
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("client: protocol error: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// roundTrip sends req (assigning its ID) and waits for the matching
// response.
func (c *conn) roundTrip(req *wire.Request) (wire.Response, error) {
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.idSeq++
	req.ID = c.idSeq
	c.pending[req.ID] = ch
	c.mu.Unlock()

	payload, err := wire.AppendRequest(nil, req)
	if err != nil { // encoding error: local bug or limit violation
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.wmu.Lock()
	werr := wire.WriteFrame(c.bw, payload)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("client: write failed: %w", werr))
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return wire.Response{}, err
	}
	return resp, nil
}

func (cl *Client) call(req *wire.Request) (wire.Response, error) {
	c, err := cl.acquire()
	if err != nil {
		return wire.Response{}, err
	}
	return c.roundTrip(req)
}

func statusErr(res *wire.Result) error {
	msg := ""
	if res.HasVal {
		msg = string(res.Val)
	}
	return &ServerError{Status: res.Status, Msg: msg}
}

// Ping round-trips an empty request.
func (cl *Client) Ping() error {
	resp, err := cl.call(&wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Get returns the value of key and whether it is present.
func (cl *Client) Get(key string) (string, bool, error) {
	resp, err := cl.call(&wire.Request{Op: wire.OpGet, Cmd: wire.Get(key)})
	if err != nil {
		return "", false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return string(resp.Result.Val), true, nil
	case wire.StatusNotFound:
		return "", false, nil
	default:
		return "", false, statusErr(&resp.Result)
	}
}

// Put stores val under key.
func (cl *Client) Put(key, val string) error {
	resp, err := cl.call(&wire.Request{Op: wire.OpPut, Cmd: wire.Put(key, []byte(val))})
	if err != nil {
		return err
	}
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Del removes key, reporting whether it was present.
func (cl *Client) Del(key string) (bool, error) {
	resp, err := cl.call(&wire.Request{Op: wire.OpDel, Cmd: wire.Del(key)})
	if err != nil {
		return false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil
	case wire.StatusNotFound:
		return false, nil
	default:
		return false, statusErr(&resp.Result)
	}
}

// CAS atomically replaces key's value with val iff the current value equals
// expect (nil expect ⇒ key must be absent). On mismatch it reports ok ==
// false and the current value (cur == nil: key absent).
func (cl *Client) CAS(key string, expect []byte, val string) (ok bool, cur []byte, err error) {
	resp, err := cl.call(&wire.Request{Op: wire.OpCAS, Cmd: wire.CAS(key, expect, []byte(val))})
	if err != nil {
		return false, nil, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil, nil
	case wire.StatusCASMismatch:
		if resp.Result.HasVal {
			return false, resp.Result.Val, nil
		}
		return false, nil, nil
	default:
		return false, nil, statusErr(&resp.Result)
	}
}

// Multi executes a batch of commands as one atomic server-side transaction
// (the batch fans out over transactional futures on the server). It returns
// the per-command results and whether the batch applied; applied == false
// means a CAS in the batch failed and no write was applied.
func (cl *Client) Multi(cmds []wire.Cmd) (results []wire.Result, applied bool, err error) {
	resp, err := cl.call(&wire.Request{Op: wire.OpMulti, Batch: cmds})
	if err != nil {
		return nil, false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return resp.Batch, true, nil
	case wire.StatusCASMismatch:
		return resp.Batch, false, nil
	default:
		return nil, false, statusErr(&resp.Result)
	}
}

// Stats fetches and decodes the server's STATS document.
func (cl *Client) Stats() (*wire.StatsReply, error) {
	resp, err := cl.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Result.Status != wire.StatusOK {
		return nil, statusErr(&resp.Result)
	}
	var reply wire.StatsReply
	if err := json.Unmarshal(resp.Result.Val, &reply); err != nil {
		return nil, fmt.Errorf("client: bad stats payload: %w", err)
	}
	return &reply, nil
}
