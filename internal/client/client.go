// Package client is the Go client for wtfd (see internal/server): a small
// pool of TCP connections, each carrying pipelined length-prefixed frames
// (internal/wire). Any number of goroutines may share one Client; calls on
// the same connection interleave on the wire and are matched back to their
// callers by request ID, so one slow request does not serialize the others.
//
// The pipelined hot path is engineered to stay off shared state: the
// pending-call table is sharded by request ID (pipelined callers rarely
// touch the same shard's mutex), and request objects, response objects,
// response channels and encode buffers are all pooled — responses are
// decoded in place into pooled *wire.Response scratch (DecodeResponseInto)
// and recycled once the typed helper has extracted its result, so a
// steady-state GET round-trip allocates nothing on the client
// (BenchmarkClientGetRoundTrip gates this; GetBytes is the allocation-free
// variant, Get still materializes its string return).
//
// A connection that fails is redialed transparently on its next use: calls
// in flight on the broken connection return the transport error, later
// calls re-establish the connection (see TestReconnectAfterRestart).
//
// With Options.Retry enabled the client additionally retries failed calls
// with exponential backoff + jitter, idempotency-aware: reads (GET, PING,
// STATS) are simply resent, while every write — PUT, DEL, CAS, MULTI — is
// resent under the wire DEDUP envelope, which the server's exactly-once
// table answers from memory if an earlier send actually applied. CAS and
// MULTI need the envelope for correctness (a blind re-run could
// double-apply); PUT and DEL get it so a resend whose original frame is
// still queued server-side cannot re-apply a stale value after a newer
// write — which is what keeps per-key reads monotonic under retries.
// StatusBusy (overload shedding) and StatusUnavailable responses are
// retried for every op: the server refused the request without executing
// it. The context-taking variants (GetCtx, PutCtx, ...) bound the whole
// call — dialing, backoff and all resends — by the context's deadline
// instead of retrying forever.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wtftm/internal/wire"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the connection-pool size; default 2. Calls are spread
	// round-robin; each connection pipelines independently.
	Conns int
	// DialTimeout bounds one connection attempt; default 5s. A context
	// deadline caps it further.
	DialTimeout time.Duration
	// Dial overrides the transport dialer (fault-injection tests wrap the
	// returned net.Conn); nil means plain TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Retry enables transparent retry with exponential backoff. The zero
	// value disables it: transport errors surface to the caller, as before.
	Retry RetryPolicy
	// ClientID is this client's identity in the server's exactly-once table
	// (the DEDUP envelope on retried CAS/MULTI). 0 means a random identity,
	// which is what production wants; tests pin it for determinism.
	ClientID uint64
}

// RetryPolicy bounds transparent call retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including the
	// first. 0 (and 1) disable retry.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; default 5ms. Each
	// further attempt doubles it, capped at MaxBackoff (default 500ms), and
	// the actual sleep is uniformly jittered over [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p *RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// backoff returns the jittered sleep before retry attempt (attempt 1 = the
// first resend).
func (p *RetryPolicy) backoff(attempt int) time.Duration {
	base, max := p.BaseBackoff, p.MaxBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 500 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + rand.N(d/2)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Conns <= 0 {
		out.Conns = 2
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.ClientID == 0 {
		out.ClientID = rand.Uint64() | 1 // 0 is reserved for "unset"
	}
	return out
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// ServerError reports a response the server answered with a non-OK status
// that the typed helpers cannot express in their results (StatusErr,
// StatusUnavailable, unexpected codes).
type ServerError struct {
	Status wire.Status
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: server returned %v: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("client: server returned %v", e.Status)
}

// Client is a pooled, pipelined wtfd client. Safe for concurrent use.
type Client struct {
	opts   Options
	closed atomic.Bool
	next   atomic.Uint64
	slots  []*slot

	seq atomic.Uint64 // DEDUP sequence numbers (one per enveloped write)

	retries     atomic.Int64 // resends after transport errors
	busyRetries atomic.Int64 // resends after StatusBusy/StatusUnavailable
	redials     atomic.Int64 // connections dialed beyond the first per slot
}

// Metrics is a snapshot of the client's retry counters.
type Metrics struct {
	// Retries counts resends after transport errors; BusyRetries counts
	// resends after the server refused a request (BUSY shedding or drain);
	// Redials counts reconnections after a slot's connection failed.
	Retries     int64
	BusyRetries int64
	Redials     int64
}

// Metrics returns the client's retry counters.
func (cl *Client) Metrics() Metrics {
	return Metrics{
		Retries:     cl.retries.Load(),
		BusyRetries: cl.busyRetries.Load(),
		Redials:     cl.redials.Load(),
	}
}

// slot is one pool position: a lazily dialed, replace-on-failure conn.
type slot struct {
	mu sync.Mutex
	c  *conn
}

// pendShards is the pending-table shard count. Requests are assigned to
// shards by ID, so concurrent pipelined callers are spread across shard
// mutexes instead of serializing on one.
const pendShards = 16

// pendShard is one shard of the pending-call table.
type pendShard struct {
	mu sync.Mutex
	m  map[uint32]chan *wire.Response
}

// conn is one live TCP connection with a reader goroutine dispatching
// responses to waiting callers by request ID.
type conn struct {
	nc  net.Conn
	bw  *bufio.Writer
	wmu sync.Mutex // serializes frame writes

	idSeq  atomic.Uint32
	failed atomic.Bool // set before the pending sweep; guards new registrations
	pend   [pendShards]pendShard

	errMu sync.Mutex
	err   error // set once broken
}

// respChanPool recycles the single-slot channels callers wait on. Channels
// closed by the failure path (close delivers the error to every waiter) are
// never returned to the pool; only channels that delivered a response are.
// The *wire.Response riding the channel is pooled separately: the read loop
// acquires it, the caller releases it after extracting the result.
var respChanPool = sync.Pool{New: func() any { return make(chan *wire.Response, 1) }}

// encBufPool recycles request-encoding buffers across calls.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// New creates a client. No connection is made until the first call.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{opts: opts, slots: make([]*slot, opts.Conns)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// Close closes every pooled connection; in-flight calls fail.
func (cl *Client) Close() {
	cl.closed.Store(true)
	for _, s := range cl.slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.fail(ErrClosed)
			s.c = nil
		}
		s.mu.Unlock()
	}
}

// acquire picks the next pool slot and returns its live connection,
// (re)dialing if the slot is empty or its connection has failed. A context
// deadline caps the dial timeout, so a bounded caller is never stuck in a
// full DialTimeout against a gone server.
func (cl *Client) acquire(ctx context.Context) (*conn, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	s := cl.slots[cl.next.Add(1)%uint64(len(cl.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil && !s.c.failed.Load() {
		return s.c, nil
	}
	timeout := cl.opts.DialTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeout {
			timeout = rem
		}
		if timeout <= 0 {
			return nil, context.DeadlineExceeded
		}
	}
	dial := cl.opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(cl.opts.Addr, timeout)
	if err != nil {
		return nil, err
	}
	if s.c != nil {
		cl.redials.Add(1)
	}
	c := &conn{nc: nc, bw: bufio.NewWriter(nc)}
	for i := range c.pend {
		c.pend[i].m = make(map[uint32]chan *wire.Response)
	}
	go c.readLoop()
	s.c = c
	return c, nil
}

// fail marks the connection broken and delivers err to every waiter.
func (c *conn) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	// Order matters: failed is observed under the shard mutex by
	// registering callers, so every channel is either swept here or its
	// caller saw failed and never registered.
	c.failed.Store(true)
	c.nc.Close()
	for i := range c.pend {
		sh := &c.pend[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for _, ch := range m {
			close(ch) // receivers translate a closed channel into c.err
		}
	}
}

func (c *conn) lastErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		buf = wire.RecycleFrameBuf(payload)
		resp := wire.AcquireResponse()
		if err := wire.DecodeResponseInto(resp, payload); err != nil {
			wire.ReleaseResponse(resp)
			c.fail(fmt.Errorf("client: protocol error: %w", err))
			return
		}
		sh := &c.pend[resp.ID%pendShards]
		sh.mu.Lock()
		ch := sh.m[resp.ID]
		delete(sh.m, resp.ID)
		sh.mu.Unlock()
		if ch != nil {
			ch <- resp
		} else {
			// The waiter abandoned the call (context ended); recycle.
			wire.ReleaseResponse(resp)
		}
	}
}

// roundTrip sends req (assigning its ID) and waits for the matching
// response, or for ctx to end. The returned response is a pooled object the
// read loop decoded into: the caller owns it and must ReleaseResponse it
// after extracting what it needs (nothing reachable from it may be retained).
func (c *conn) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := respChanPool.Get().(chan *wire.Response)
	id := c.idSeq.Add(1)
	req.ID = id
	sh := &c.pend[id%pendShards]
	sh.mu.Lock()
	if c.failed.Load() || sh.m == nil {
		sh.mu.Unlock()
		respChanPool.Put(ch)
		err := c.lastErr()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	sh.m[id] = ch
	sh.mu.Unlock()

	bufp := encBufPool.Get().(*[]byte)
	payload, err := wire.AppendRequest((*bufp)[:0], req)
	if err != nil { // encoding error: local bug or limit violation
		encBufPool.Put(bufp)
		sh.mu.Lock()
		if sh.m != nil {
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		respChanPool.Put(ch)
		return nil, err
	}
	c.wmu.Lock()
	werr := wire.WriteFrame(c.bw, payload)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	*bufp = wire.RecycleFrameBuf(payload)
	encBufPool.Put(bufp)
	if werr != nil {
		c.fail(fmt.Errorf("client: write failed: %w", werr))
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			// Closed by the failure sweep: the channel cannot be reused.
			err := c.lastErr()
			if err == nil {
				err = errors.New("client: connection closed")
			}
			return nil, err
		}
		respChanPool.Put(ch)
		return resp, nil
	case <-ctx.Done():
		// Abandon the wait. Deregister so the read loop stops tracking the
		// ID, but never return ch to the pool: the read loop may have
		// already fetched it and be about to send (the buffered slot absorbs
		// that send; the channel — and any response it carries — is then
		// garbage, collected normally).
		sh.mu.Lock()
		if sh.m != nil {
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		return nil, ctx.Err()
	}
}

// retriableStatus reports a response the server answered without executing
// the request: shed under overload (BUSY) or refused while draining. Safe to
// retry for every op.
func retriableStatus(st wire.Status) bool {
	return st == wire.StatusBusy || st == wire.StatusUnavailable
}

// do runs one call under ctx and the retry policy. resendSafe marks ops
// whose blind resend cannot double-apply (reads, PUT/DEL, PING/STATS — and
// any dedup-enveloped write, where the server's exactly-once table absorbs
// the duplicate). A transport error on a non-resend-safe op surfaces
// immediately: the first send may have applied. The returned response is
// pooled: the caller must ReleaseResponse it after consuming the result.
func (cl *Client) do(ctx context.Context, req *wire.Request, resendSafe bool) (*wire.Response, error) {
	attempts := cl.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
			return nil, err
		}
		c, err := cl.acquire(ctx)
		if err == nil {
			var resp *wire.Response
			resp, err = c.roundTrip(ctx, req)
			switch {
			case err == nil && retriableStatus(resp.Result.Status) && attempt < attempts:
				// Refused without execution; any op may retry. statusErr
				// copies the message out, so the response can be recycled
				// before the backoff sleep.
				cl.busyRetries.Add(1)
				lastErr = statusErr(&resp.Result)
				wire.ReleaseResponse(resp)
				if serr := cl.sleepBackoff(ctx, attempt); serr != nil {
					return nil, fmt.Errorf("%w (last attempt: %w)", serr, lastErr)
				}
				continue
			case err == nil:
				return resp, nil
			case errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				return nil, err
			case !resendSafe && !req.Dedup:
				// The send may have applied and the ack is lost; a blind
				// resend could double-apply. The caller must decide.
				return nil, err
			}
		}
		// Transport or dial failure on a resend-safe (or enveloped) op.
		if attempt >= attempts {
			return nil, err
		}
		cl.retries.Add(1)
		lastErr = err
		if serr := cl.sleepBackoff(ctx, attempt); serr != nil {
			return nil, fmt.Errorf("%w (last attempt: %w)", serr, lastErr)
		}
	}
}

// sleepBackoff sleeps the policy's jittered backoff for attempt, or returns
// early with the context's error.
func (cl *Client) sleepBackoff(ctx context.Context, attempt int) error {
	timer := time.NewTimer(cl.opts.Retry.backoff(attempt))
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// envelope marks a write request for exactly-once resend when retry is on:
// the server remembers the outcome under (ClientID, seq), so the resend of a
// lost ack is answered from memory instead of re-applied.
func (cl *Client) envelope(req *wire.Request) {
	if !cl.opts.Retry.enabled() {
		return
	}
	req.Dedup = true
	req.ClientID = cl.opts.ClientID
	req.Seq = cl.seq.Add(1)
}

// callCmd round-trips a pooled single-command request. The returned
// response is pooled; the caller releases it after extracting its result.
func (cl *Client) callCmd(ctx context.Context, op wire.Op, cmd wire.Cmd, resendSafe bool) (*wire.Response, error) {
	req := wire.AcquireRequest()
	req.Op = op
	req.Cmd = cmd
	switch op {
	case wire.OpPut, wire.OpDel, wire.OpCAS:
		cl.envelope(req)
	}
	resp, err := cl.do(ctx, req, resendSafe)
	req.Cmd = wire.Cmd{} // caller owns cmd's buffers; don't recycle them
	wire.ReleaseRequest(req)
	return resp, err
}

func statusErr(res *wire.Result) error {
	msg := ""
	if res.HasVal {
		msg = string(res.Val)
	}
	return &ServerError{Status: res.Status, Msg: msg}
}

// Ping round-trips an empty request.
func (cl *Client) Ping() error { return cl.PingCtx(context.Background()) }

// PingCtx is Ping bounded by ctx.
func (cl *Client) PingCtx(ctx context.Context) error {
	resp, err := cl.callCmd(ctx, wire.OpPing, wire.Cmd{}, true)
	if err != nil {
		return err
	}
	defer wire.ReleaseResponse(resp)
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Get returns the value of key and whether it is present.
func (cl *Client) Get(key string) (string, bool, error) {
	return cl.GetCtx(context.Background(), key)
}

// GetCtx is Get bounded by ctx.
func (cl *Client) GetCtx(ctx context.Context, key string) (string, bool, error) {
	resp, err := cl.callCmd(ctx, wire.OpGet, wire.Get(key), true)
	if err != nil {
		return "", false, err
	}
	defer wire.ReleaseResponse(resp)
	switch resp.Result.Status {
	case wire.StatusOK:
		return string(resp.Result.Val), true, nil
	case wire.StatusNotFound:
		return "", false, nil
	default:
		return "", false, statusErr(&resp.Result)
	}
}

// GetBytes is the allocation-free Get: the value is appended to dst (grown
// if needed) and the extended slice returned, so a caller reusing dst across
// calls completes a whole GET round-trip with zero heap allocations — the
// shape BenchmarkClientGetRoundTrip gates. found reports presence; on a miss
// or error dst is returned unchanged.
func (cl *Client) GetBytes(key string, dst []byte) (val []byte, found bool, err error) {
	return cl.GetBytesCtx(context.Background(), key, dst)
}

// GetBytesCtx is GetBytes bounded by ctx.
func (cl *Client) GetBytesCtx(ctx context.Context, key string, dst []byte) (val []byte, found bool, err error) {
	resp, err := cl.callCmd(ctx, wire.OpGet, wire.Get(key), true)
	if err != nil {
		return dst, false, err
	}
	defer wire.ReleaseResponse(resp)
	switch resp.Result.Status {
	case wire.StatusOK:
		return append(dst, resp.Result.Val...), true, nil
	case wire.StatusNotFound:
		return dst, false, nil
	default:
		return dst, false, statusErr(&resp.Result)
	}
}

// Put stores val under key.
func (cl *Client) Put(key, val string) error {
	return cl.PutCtx(context.Background(), key, val)
}

// PutCtx is Put bounded by ctx. A PUT resend cannot corrupt state (same
// value), but it still travels under the DEDUP envelope with retry enabled
// so a stale duplicate can never re-apply after a newer write.
func (cl *Client) PutCtx(ctx context.Context, key, val string) error {
	resp, err := cl.callCmd(ctx, wire.OpPut, wire.Put(key, []byte(val)), true)
	if err != nil {
		return err
	}
	defer wire.ReleaseResponse(resp)
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Del removes key, reporting whether it was present.
func (cl *Client) Del(key string) (bool, error) {
	return cl.DelCtx(context.Background(), key)
}

// DelCtx is Del bounded by ctx; enveloped like PUT when retry is enabled
// (the "was present" report then describes the first application).
func (cl *Client) DelCtx(ctx context.Context, key string) (bool, error) {
	resp, err := cl.callCmd(ctx, wire.OpDel, wire.Del(key), true)
	if err != nil {
		return false, err
	}
	defer wire.ReleaseResponse(resp)
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil
	case wire.StatusNotFound:
		return false, nil
	default:
		return false, statusErr(&resp.Result)
	}
}

// CAS atomically replaces key's value with val iff the current value equals
// expect (nil expect ⇒ key must be absent). On mismatch it reports ok ==
// false and the current value (cur == nil: key absent).
func (cl *Client) CAS(key string, expect []byte, val string) (ok bool, cur []byte, err error) {
	return cl.CASCtx(context.Background(), key, expect, val)
}

// CASCtx is CAS bounded by ctx. A CAS is never blindly resent: with retry
// enabled it travels under the DEDUP envelope (the server answers a resend
// from its exactly-once table — a blind re-run against the CAS's own effect
// would report a spurious mismatch); without retry a transport failure
// surfaces to the caller, who alone knows whether re-running is safe.
func (cl *Client) CASCtx(ctx context.Context, key string, expect []byte, val string) (ok bool, cur []byte, err error) {
	resp, err := cl.callCmd(ctx, wire.OpCAS, wire.CAS(key, expect, []byte(val)), false)
	if err != nil {
		return false, nil, err
	}
	defer wire.ReleaseResponse(resp)
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil, nil
	case wire.StatusCASMismatch:
		if resp.Result.HasVal {
			// Clone: the result value lives in the pooled response's scratch
			// buffer, which is recycled on release.
			return false, append([]byte(nil), resp.Result.Val...), nil
		}
		return false, nil, nil
	default:
		return false, nil, statusErr(&resp.Result)
	}
}

// Multi executes a batch of commands as one atomic server-side transaction
// (the batch fans out over transactional futures on the server). It returns
// the per-command results and whether the batch applied; applied == false
// means a CAS in the batch failed and no write was applied.
func (cl *Client) Multi(cmds []wire.Cmd) (results []wire.Result, applied bool, err error) {
	return cl.MultiCtx(context.Background(), cmds)
}

// MultiCtx is Multi bounded by ctx. Like CAS, a MULTI is resent only under
// the DEDUP envelope (retry enabled); its batch may carry non-idempotent
// effects.
func (cl *Client) MultiCtx(ctx context.Context, cmds []wire.Cmd) (results []wire.Result, applied bool, err error) {
	req := wire.AcquireRequest()
	req.Op = wire.OpMulti
	req.Batch = cmds
	cl.envelope(req)
	resp, err := cl.do(ctx, req, false)
	req.Batch = nil // caller owns cmds; don't recycle their buffers
	wire.ReleaseRequest(req)
	if err != nil {
		return nil, false, err
	}
	defer wire.ReleaseResponse(resp)
	switch resp.Result.Status {
	case wire.StatusOK, wire.StatusCASMismatch:
		// Detach the batch before release: it is handed to the caller, so
		// the pooled response must not keep (and later reuse) its storage.
		// The per-result values are already private clones (the decoder
		// copies MULTI values individually for exactly this reason).
		results = resp.Batch
		resp.Batch = nil
		return results, resp.Result.Status == wire.StatusOK, nil
	default:
		return nil, false, statusErr(&resp.Result)
	}
}

// Stats fetches and decodes the server's STATS document.
func (cl *Client) Stats() (*wire.StatsReply, error) {
	return cl.StatsCtx(context.Background())
}

// StatsCtx is Stats bounded by ctx.
func (cl *Client) StatsCtx(ctx context.Context) (*wire.StatsReply, error) {
	resp, err := cl.callCmd(ctx, wire.OpStats, wire.Cmd{}, true)
	if err != nil {
		return nil, err
	}
	defer wire.ReleaseResponse(resp)
	if resp.Result.Status != wire.StatusOK {
		return nil, statusErr(&resp.Result)
	}
	var reply wire.StatsReply
	if err := json.Unmarshal(resp.Result.Val, &reply); err != nil {
		return nil, fmt.Errorf("client: bad stats payload: %w", err)
	}
	return &reply, nil
}
