// Package client is the Go client for wtfd (see internal/server): a small
// pool of TCP connections, each carrying pipelined length-prefixed frames
// (internal/wire). Any number of goroutines may share one Client; calls on
// the same connection interleave on the wire and are matched back to their
// callers by request ID, so one slow request does not serialize the others.
//
// The pipelined hot path is engineered to stay off shared state: the
// pending-call table is sharded by request ID (pipelined callers rarely
// touch the same shard's mutex), and request objects, response channels and
// encode buffers are pooled, so a steady-state call allocates only what the
// response decode itself requires.
//
// A connection that fails is redialed transparently on its next use: calls
// in flight on the broken connection return the transport error, later
// calls re-establish the connection (see TestReconnectAfterRestart).
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wtftm/internal/wire"
)

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the connection-pool size; default 2. Calls are spread
	// round-robin; each connection pipelines independently.
	Conns int
	// DialTimeout bounds one connection attempt; default 5s.
	DialTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Conns <= 0 {
		out.Conns = 2
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	return out
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// ServerError reports a response the server answered with a non-OK status
// that the typed helpers cannot express in their results (StatusErr,
// StatusUnavailable, unexpected codes).
type ServerError struct {
	Status wire.Status
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("client: server returned %v: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("client: server returned %v", e.Status)
}

// Client is a pooled, pipelined wtfd client. Safe for concurrent use.
type Client struct {
	opts   Options
	closed atomic.Bool
	next   atomic.Uint64
	slots  []*slot
}

// slot is one pool position: a lazily dialed, replace-on-failure conn.
type slot struct {
	mu sync.Mutex
	c  *conn
}

// pendShards is the pending-table shard count. Requests are assigned to
// shards by ID, so concurrent pipelined callers are spread across shard
// mutexes instead of serializing on one.
const pendShards = 16

// pendShard is one shard of the pending-call table.
type pendShard struct {
	mu sync.Mutex
	m  map[uint32]chan wire.Response
}

// conn is one live TCP connection with a reader goroutine dispatching
// responses to waiting callers by request ID.
type conn struct {
	nc  net.Conn
	bw  *bufio.Writer
	wmu sync.Mutex // serializes frame writes

	idSeq  atomic.Uint32
	failed atomic.Bool // set before the pending sweep; guards new registrations
	pend   [pendShards]pendShard

	errMu sync.Mutex
	err   error // set once broken
}

// respChanPool recycles the single-slot channels callers wait on. Channels
// closed by the failure path (close delivers the error to every waiter) are
// never returned to the pool; only channels that delivered a response are.
var respChanPool = sync.Pool{New: func() any { return make(chan wire.Response, 1) }}

// encBufPool recycles request-encoding buffers across calls.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// New creates a client. No connection is made until the first call.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{opts: opts, slots: make([]*slot, opts.Conns)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	return c
}

// Close closes every pooled connection; in-flight calls fail.
func (cl *Client) Close() {
	cl.closed.Store(true)
	for _, s := range cl.slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.fail(ErrClosed)
			s.c = nil
		}
		s.mu.Unlock()
	}
}

// acquire picks the next pool slot and returns its live connection,
// (re)dialing if the slot is empty or its connection has failed.
func (cl *Client) acquire() (*conn, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	s := cl.slots[cl.next.Add(1)%uint64(len(cl.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil && !s.c.failed.Load() {
		return s.c, nil
	}
	nc, err := net.DialTimeout("tcp", cl.opts.Addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &conn{nc: nc, bw: bufio.NewWriter(nc)}
	for i := range c.pend {
		c.pend[i].m = make(map[uint32]chan wire.Response)
	}
	go c.readLoop()
	s.c = c
	return c, nil
}

// fail marks the connection broken and delivers err to every waiter.
func (c *conn) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	// Order matters: failed is observed under the shard mutex by
	// registering callers, so every channel is either swept here or its
	// caller saw failed and never registered.
	c.failed.Store(true)
	c.nc.Close()
	for i := range c.pend {
		sh := &c.pend[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for _, ch := range m {
			close(ch) // receivers translate a closed channel into c.err
		}
	}
}

func (c *conn) lastErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		buf = wire.RecycleFrameBuf(payload)
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("client: protocol error: %w", err))
			return
		}
		sh := &c.pend[resp.ID%pendShards]
		sh.mu.Lock()
		ch := sh.m[resp.ID]
		delete(sh.m, resp.ID)
		sh.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// roundTrip sends req (assigning its ID) and waits for the matching
// response.
func (c *conn) roundTrip(req *wire.Request) (wire.Response, error) {
	ch := respChanPool.Get().(chan wire.Response)
	id := c.idSeq.Add(1)
	req.ID = id
	sh := &c.pend[id%pendShards]
	sh.mu.Lock()
	if c.failed.Load() || sh.m == nil {
		sh.mu.Unlock()
		respChanPool.Put(ch)
		err := c.lastErr()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return wire.Response{}, err
	}
	sh.m[id] = ch
	sh.mu.Unlock()

	bufp := encBufPool.Get().(*[]byte)
	payload, err := wire.AppendRequest((*bufp)[:0], req)
	if err != nil { // encoding error: local bug or limit violation
		encBufPool.Put(bufp)
		sh.mu.Lock()
		if sh.m != nil {
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		respChanPool.Put(ch)
		return wire.Response{}, err
	}
	c.wmu.Lock()
	werr := wire.WriteFrame(c.bw, payload)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	*bufp = wire.RecycleFrameBuf(payload)
	encBufPool.Put(bufp)
	if werr != nil {
		c.fail(fmt.Errorf("client: write failed: %w", werr))
	}

	resp, ok := <-ch
	if !ok {
		// Closed by the failure sweep: the channel cannot be reused.
		err := c.lastErr()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return wire.Response{}, err
	}
	respChanPool.Put(ch)
	return resp, nil
}

func (cl *Client) call(req *wire.Request) (wire.Response, error) {
	c, err := cl.acquire()
	if err != nil {
		return wire.Response{}, err
	}
	return c.roundTrip(req)
}

// callCmd round-trips a pooled single-command request.
func (cl *Client) callCmd(op wire.Op, cmd wire.Cmd) (wire.Response, error) {
	req := wire.AcquireRequest()
	req.Op = op
	req.Cmd = cmd
	resp, err := cl.call(req)
	req.Cmd = wire.Cmd{} // caller owns cmd's buffers; don't recycle them
	wire.ReleaseRequest(req)
	return resp, err
}

func statusErr(res *wire.Result) error {
	msg := ""
	if res.HasVal {
		msg = string(res.Val)
	}
	return &ServerError{Status: res.Status, Msg: msg}
}

// Ping round-trips an empty request.
func (cl *Client) Ping() error {
	resp, err := cl.callCmd(wire.OpPing, wire.Cmd{})
	if err != nil {
		return err
	}
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Get returns the value of key and whether it is present.
func (cl *Client) Get(key string) (string, bool, error) {
	resp, err := cl.callCmd(wire.OpGet, wire.Get(key))
	if err != nil {
		return "", false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return string(resp.Result.Val), true, nil
	case wire.StatusNotFound:
		return "", false, nil
	default:
		return "", false, statusErr(&resp.Result)
	}
}

// Put stores val under key.
func (cl *Client) Put(key, val string) error {
	resp, err := cl.callCmd(wire.OpPut, wire.Put(key, []byte(val)))
	if err != nil {
		return err
	}
	if resp.Result.Status != wire.StatusOK {
		return statusErr(&resp.Result)
	}
	return nil
}

// Del removes key, reporting whether it was present.
func (cl *Client) Del(key string) (bool, error) {
	resp, err := cl.callCmd(wire.OpDel, wire.Del(key))
	if err != nil {
		return false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil
	case wire.StatusNotFound:
		return false, nil
	default:
		return false, statusErr(&resp.Result)
	}
}

// CAS atomically replaces key's value with val iff the current value equals
// expect (nil expect ⇒ key must be absent). On mismatch it reports ok ==
// false and the current value (cur == nil: key absent).
func (cl *Client) CAS(key string, expect []byte, val string) (ok bool, cur []byte, err error) {
	resp, err := cl.callCmd(wire.OpCAS, wire.CAS(key, expect, []byte(val)))
	if err != nil {
		return false, nil, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return true, nil, nil
	case wire.StatusCASMismatch:
		if resp.Result.HasVal {
			return false, resp.Result.Val, nil
		}
		return false, nil, nil
	default:
		return false, nil, statusErr(&resp.Result)
	}
}

// Multi executes a batch of commands as one atomic server-side transaction
// (the batch fans out over transactional futures on the server). It returns
// the per-command results and whether the batch applied; applied == false
// means a CAS in the batch failed and no write was applied.
func (cl *Client) Multi(cmds []wire.Cmd) (results []wire.Result, applied bool, err error) {
	req := wire.AcquireRequest()
	req.Op = wire.OpMulti
	req.Batch = cmds
	resp, err := cl.call(req)
	req.Batch = nil // caller owns cmds; don't recycle their buffers
	wire.ReleaseRequest(req)
	if err != nil {
		return nil, false, err
	}
	switch resp.Result.Status {
	case wire.StatusOK:
		return resp.Batch, true, nil
	case wire.StatusCASMismatch:
		return resp.Batch, false, nil
	default:
		return nil, false, statusErr(&resp.Result)
	}
}

// Stats fetches and decodes the server's STATS document.
func (cl *Client) Stats() (*wire.StatsReply, error) {
	resp, err := cl.callCmd(wire.OpStats, wire.Cmd{})
	if err != nil {
		return nil, err
	}
	if resp.Result.Status != wire.StatusOK {
		return nil, statusErr(&resp.Result)
	}
	var reply wire.StatsReply
	if err := json.Unmarshal(resp.Result.Val, &reply); err != nil {
		return nil, fmt.Errorf("client: bad stats payload: %w", err)
	}
	return &reply, nil
}
