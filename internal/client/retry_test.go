package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"wtftm/internal/server"
)

func startTestServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(s.Drain)
	return s
}

// TestRetryTransientDialFailure: with retry enabled, a call rides out a few
// failed dials and succeeds once the transport recovers.
func TestRetryTransientDialFailure(t *testing.T) {
	s := startTestServer(t)
	var dials atomic.Int64
	cl := New(Options{
		Addr:  s.Addr().String(),
		Conns: 1,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			if dials.Add(1) <= 3 {
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
		Retry: RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	defer cl.Close()

	if err := cl.Put("k", "v"); err != nil {
		t.Fatalf("Put with transient dial failures: %v", err)
	}
	if got := cl.Metrics().Retries; got < 3 {
		t.Fatalf("Retries = %d, want >= 3", got)
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("Get after retried Put = %q ok=%v err=%v", v, ok, err)
	}
}

// TestRetryRespectsContextDeadline is the satellite fix under test: with the
// server gone and an aggressive retry policy, a context-bounded call must
// return promptly with the deadline error instead of retrying forever.
func TestRetryRespectsContextDeadline(t *testing.T) {
	s := startTestServer(t)
	addr := s.Addr().String()
	s.Drain() // nothing listens there anymore

	cl := New(Options{
		Addr:  addr,
		Conns: 1,
		Retry: RetryPolicy{MaxAttempts: 1 << 20, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := cl.PingCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PingCtx against gone server: err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("PingCtx took %v; the deadline did not bound the retry loop", elapsed)
	}

	// A pre-cancelled context short-circuits before any dialing.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if err := cl.PingCtx(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled PingCtx: err = %v, want Canceled", err)
	}
}

// dropReadsConn delivers writes but never a response: the request reaches
// the server, the ack is lost — the lost-ack shape that makes blind CAS
// retry dangerous.
type dropReadsConn struct {
	net.Conn
	delay time.Duration
}

func (c *dropReadsConn) Read(p []byte) (int, error) {
	// Give the server time to execute the delivered request first, so the
	// retry exercises the dedup-table hit path rather than racing it.
	time.Sleep(c.delay)
	c.Conn.Close()
	return 0, errors.New("injected read failure (ack lost)")
}

// TestCASRetryExactlyOnce: a CAS whose ack is lost is resent under the DEDUP
// envelope and answered from the server's exactly-once table — the caller
// sees the true outcome (ok), not the spurious mismatch a blind re-run
// against the CAS's own effect would produce.
func TestCASRetryExactlyOnce(t *testing.T) {
	s := startTestServer(t)
	var dials atomic.Int64
	cl := New(Options{
		Addr:     s.Addr().String(),
		Conns:    1,
		ClientID: 99,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				return &dropReadsConn{Conn: nc, delay: 100 * time.Millisecond}, nil
			}
			return nc, nil
		},
		Retry: RetryPolicy{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	})
	defer cl.Close()

	ok, cur, err := cl.CAS("key", nil, "created")
	if err != nil || !ok {
		t.Fatalf("CAS after lost ack = ok=%v cur=%q err=%v, want ok", ok, cur, err)
	}
	if v, found, err := cl.Get("key"); err != nil || !found || v != "created" {
		t.Fatalf("Get after retried CAS = %q found=%v err=%v", v, found, err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Server.DedupHits < 1 {
		t.Fatalf("DedupHits = %d, want >= 1 (the resend must have been answered from the table)", stats.Server.DedupHits)
	}
	if got := cl.Metrics().Retries; got < 1 {
		t.Fatalf("Retries = %d, want >= 1", got)
	}
}

// TestNoRetryByDefault pins the zero-value behavior existing users depend
// on: without a retry policy a transport error surfaces immediately, and a
// CAS is never resent.
func TestNoRetryByDefault(t *testing.T) {
	s := startTestServer(t)
	addr := s.Addr().String()
	s.Drain()
	cl := New(Options{Addr: addr, Conns: 1})
	defer cl.Close()
	if err := cl.Put("k", "v"); err == nil {
		t.Fatal("Put against gone server succeeded without retry policy")
	}
	if got := cl.Metrics().Retries; got != 0 {
		t.Fatalf("Retries = %d without a policy, want 0", got)
	}
}
