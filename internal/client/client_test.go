package client

import (
	"net"
	"testing"
	"time"

	"wtftm/internal/server"
)

// TestReconnectAfterRestart kills the server under a live client, restarts
// it on the same address, and checks the client transparently redials: calls
// in flight on the dead connection fail, later calls succeed again.
func TestReconnectAfterRestart(t *testing.T) {
	s1, err := server.New(server.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := s1.Addr().String()

	cl := New(Options{Addr: addr, Conns: 1})
	defer cl.Close()
	if err := cl.Put("k", "before"); err != nil {
		t.Fatalf("Put: %v", err)
	}

	s1.Drain()

	// The pooled connection is dead: the first call surfaces the transport
	// error (or, if the failure is detected lazily, a redial error since
	// nothing listens yet).
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping succeeded against a stopped server")
	}

	// Restart on the same port (Go listeners set SO_REUSEADDR).
	s2, err := server.New(server.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	s2.Serve(ln)
	defer s2.Drain()

	// The client recovers without any explicit reset. The listener is
	// already bound (net.Listen returned), so each retry is a real dial
	// attempt against a live socket — the loop cycles the pool's dead
	// connection out without sleeping, bounded by a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := cl.Put("k", "after")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client did not reconnect: %v", err)
		}
	}
	// s2 has a fresh store; the new write is there.
	if v, ok, err := cl.Get("k"); err != nil || !ok || v != "after" {
		t.Fatalf("Get after reconnect = %q ok=%v err=%v", v, ok, err)
	}
}

// TestCallsOnClosedClient checks Close is terminal and safe.
func TestCallsOnClosedClient(t *testing.T) {
	s, err := server.New(server.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	cl := New(Options{Addr: s.Addr().String(), Conns: 2})
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // idempotent
	if err := cl.Ping(); err != ErrClosed {
		t.Fatalf("Ping on closed client = %v, want ErrClosed", err)
	}
}

// TestPoolSpreadsConnections checks Conns > 1 actually opens that many
// server-side connections under concurrent use.
func TestPoolSpreadsConnections(t *testing.T) {
	s, err := server.New(server.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	cl := New(Options{Addr: s.Addr().String(), Conns: 3})
	defer cl.Close()
	for i := 0; i < 6; i++ { // round-robin touches every slot
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.ConnsOpened != 3 {
		t.Fatalf("server saw %d connections, want 3", st.Server.ConnsOpened)
	}
}
