package client

import (
	"testing"

	"wtftm/internal/server"
)

// BenchmarkClientGetRoundTrip measures a full GET over loopback — encode,
// write, server fast path, response decode into a pooled *wire.Response,
// value copy into the caller's buffer — via the GetBytes variant. This is
// the round-trip allocation gate scripts/ci.sh enforces (≤ 1 alloc/op):
// the single remaining allocation is the server materializing the key
// string during request decode (map keys are strings); everything else on
// both ends — frames, requests, responses, the value handoff — is pooled,
// so a read-heavy workload's cost is syscalls, not GC.
func BenchmarkClientGetRoundTrip(b *testing.B) {
	s, err := server.New(server.Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Drain()
	if err := s.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	cl := New(Options{Addr: s.Addr().String(), Conns: 1})
	defer cl.Close()
	if err := cl.Put("bench-key", "bench-value"); err != nil {
		b.Fatal(err)
	}
	// Warm the pools and size dst before measuring.
	dst, found, err := cl.GetBytes("bench-key", nil)
	if err != nil || !found {
		b.Fatalf("warmup GET = (%v, %v)", found, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, found, err = cl.GetBytes("bench-key", dst[:0])
		if err != nil || !found {
			b.Fatalf("GET = (%v, %v)", found, err)
		}
	}
	if string(dst) != "bench-value" {
		b.Fatalf("value = %q", dst)
	}
}
