package workload

import (
	"testing"
	"testing/quick"

	"wtftm/internal/mvstm"
)

func TestArrayInit(t *testing.T) {
	stm := mvstm.New()
	a := NewArray(stm, 100)
	if a.Len() != 100 {
		t.Fatalf("len = %d", a.Len())
	}
	tx := stm.Begin()
	defer tx.Discard()
	for i := 0; i < a.Len(); i += 17 {
		if got := tx.Read(a.Box(i)); got != i {
			t.Fatalf("a[%d] = %v", i, got)
		}
	}
}

func TestHotSpotsInit(t *testing.T) {
	stm := mvstm.New()
	h := NewHotSpots(stm, 20)
	if h.Len() != 20 {
		t.Fatalf("len = %d", h.Len())
	}
	tx := stm.Begin()
	defer tx.Discard()
	if got := tx.Read(h.Box(19)); got != 0 {
		t.Fatalf("hot spot initial = %v", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets = 10
	const samples = 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < samples/buckets*8/10 || c > samples/buckets*12/10 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}
