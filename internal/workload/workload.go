// Package workload provides the synthetic building blocks of the paper's
// evaluation (§5): transactional arrays, hot-spot sets, and deterministic
// per-goroutine random number generators.
package workload

import (
	"fmt"

	"wtftm/internal/mvstm"
)

// Array is a transactional array of boxes, the "array of 1M elements" of
// §5.1.
type Array struct {
	boxes []*mvstm.VBox
}

// NewArray creates an array of n boxes initialized to their index.
func NewArray(stm *mvstm.STM, n int) *Array {
	a := &Array{boxes: make([]*mvstm.VBox, n)}
	for i := range a.boxes {
		a.boxes[i] = stm.NewBoxNamed(fmt.Sprintf("a%d", i), i)
	}
	return a
}

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.boxes) }

// Box returns the i-th element's box.
func (a *Array) Box(i int) *mvstm.VBox { return a.boxes[i] }

// HotSpots is a set of contended boxes (the "hot spot items" of §5.2).
type HotSpots struct {
	boxes []*mvstm.VBox
}

// NewHotSpots creates n hot-spot boxes initialized to zero.
func NewHotSpots(stm *mvstm.STM, n int) *HotSpots {
	h := &HotSpots{boxes: make([]*mvstm.VBox, n)}
	for i := range h.boxes {
		h.boxes[i] = stm.NewBoxNamed(fmt.Sprintf("h%d", i), 0)
	}
	return h
}

// Len returns the number of hot spots.
func (h *HotSpots) Len() int { return len(h.boxes) }

// Box returns the i-th hot spot.
func (h *HotSpots) Box(i int) *mvstm.VBox { return h.boxes[i] }

// RNG is a tiny xorshift64* generator: deterministic, allocation-free, and
// safe to embed one per goroutine.
type RNG struct {
	x uint64
}

// NewRNG seeds a generator (seed 0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{x: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	x := r.x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.x = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
