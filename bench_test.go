// Benchmarks regenerating the paper's evaluation, one per figure (§5), plus
// engine micro-benchmarks. Each figure benchmark runs the corresponding
// experiment driver at test scale; cmd/wtfbench runs the same drivers at
// paper scale and prints the full tables.
package wtftm_test

import (
	"testing"

	"wtftm"
	"wtftm/internal/bench"
)

func quickCfg() bench.Config {
	cfg := bench.Quick()
	cfg.Duration = 60_000_000 // 60ms per point keeps the full suite fast
	return cfg
}

// BenchmarkFig3Stragglers regenerates Figure 3: WO's out-of-order
// evaluation avoids the straggler penalty SO pays.
func BenchmarkFig3Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig3(quickCfg(), bench.DefaultFig3(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MakespanSO)/float64(res.MakespanWO), "SO/WO-makespan")
	}
}

// BenchmarkFig6Left regenerates Figure 6 (left): read-only speedup grid
// over transaction length x iter.
func BenchmarkFig6Left(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6Left(quickCfg(), bench.DefaultFig6Left(true))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.SpeedupWTF, "WTF-speedup@max")
	}
}

// BenchmarkFig6Right regenerates Figure 6 (right): WTF-TM overhead vs JTF
// on a conflict-prone workload.
func BenchmarkFig6Right(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6Right(quickCfg(), bench.DefaultFig6Right(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkFig7Speedup regenerates Figure 7: speedups and abort rates under
// three contention levels.
func BenchmarkFig7Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(quickCfg(), bench.DefaultFig7(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkFig8Bank regenerates Figure 8: the Bank log replay with
// in-order/out-of-order evaluation.
func BenchmarkFig8Bank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(quickCfg(), bench.DefaultFig8(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkFig9Vacation regenerates Figure 9: the STAMP-Vacation adaptation
// with straggler injection.
func BenchmarkFig9Vacation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig9(quickCfg(), bench.DefaultFig9(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkIntruder runs the extra packet-reassembly benchmark (futures
// analyze completed flows atomically with their reassembly).
func BenchmarkIntruder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunIntruder(quickCfg(), bench.DefaultIntruder(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlowsPerSec[bench.WTF], "WTF-flows/s")
	}
}

// BenchmarkKMeans runs the extra clustering benchmark (assignment step
// fanned out over futures).
func BenchmarkKMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunKMeans(quickCfg(), bench.DefaultKMeans(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ItersPerSec[bench.WTF], "WTF-iters/s")
	}
}

// BenchmarkSegmentsRollback compares SO conflict recovery: full retry
// (Atomic) vs partial continuation rollback (AtomicSegments).
func BenchmarkSegmentsRollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSegments(quickCfg(), bench.DefaultSegments(true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AtomicLatency)/float64(res.SegmentsLatency), "fullretry/partial")
	}
}

// BenchmarkAblations runs the design-choice ablations from DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GraphOverheadTypicalPct, "graph-overhead-%")
	}
}

// BenchmarkMVSTMReadWrite measures the raw MV-STM transaction cost.
func BenchmarkMVSTMReadWrite(b *testing.B) {
	stm := wtftm.NewSTM()
	box := wtftm.NewBox(stm, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := stm.Begin()
		box.Write(txn, box.Read(txn)+1)
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitEvaluate measures the orchestration cost of one future
// (submit + evaluate round trip) inside a transaction.
func BenchmarkSubmitEvaluate(b *testing.B) {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})
	box := wtftm.NewBox(stm, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := sys.Atomic(func(tx *wtftm.Tx) error {
			f := tx.Submit(func(ftx *wtftm.Tx) (any, error) {
				box.Write(ftx, box.Read(ftx)+1)
				return nil, nil
			})
			_, err := tx.Evaluate(f)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphReadPath measures a sub-transaction read that walks the
// ancestor chain in G.
func BenchmarkGraphReadPath(b *testing.B) {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})
	box := wtftm.NewBox(stm, 0)
	err := sys.Atomic(func(tx *wtftm.Tx) error {
		// Build a deep chain of boundaries, then time reads from the tail.
		for i := 0; i < 32; i++ {
			f := tx.Submit(func(ftx *wtftm.Tx) (any, error) { return nil, nil })
			if _, err := tx.Evaluate(f); err != nil {
				return err
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = box.Read(tx)
		}
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServer runs the wtfd end-to-end experiment at test scale:
// closed-loop clients over loopback TCP, MULTI batches fanned out as
// transactional futures under WO vs SO.
func BenchmarkServer(b *testing.B) {
	p := bench.ServerParams{Clients: []int{1, 2}, Batches: []int{1, 4}, Keys: 256, Shards: 4, WriteRatio: 0.2}
	for i := 0; i < b.N; i++ {
		res, err := bench.RunServer(quickCfg(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].ReqPerSec, "req/s@1client")
	}
}
