// Quickstart: the basic transactional-futures pattern of the paper's §3.1
// (Figure 1a). A top-level transaction writes x, spawns a future that
// increments x in parallel, increments x itself, evaluates the future, and
// copies the result into y. The future and its continuation are mutually
// atomic: whatever the interleaving, the three increments compose.
package main

import (
	"fmt"
	"log"

	"wtftm"
)

func main() {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})

	x := wtftm.NewBoxNamed(stm, "x", 0)
	y := wtftm.NewBoxNamed(stm, "y", 0)

	err := sys.Atomic(func(tx *wtftm.Tx) error {
		x.Write(tx, 1)

		// Spawn a parallel sub-transaction. It sees the spawner's write
		// (x == 1) and increments it.
		f := tx.Submit(func(ftx *wtftm.Tx) (any, error) {
			x.Write(ftx, x.Read(ftx)+1)
			return "future done", nil
		})

		// The continuation increments x too — concurrently with the future,
		// yet atomically with respect to it: the engine serializes the
		// future either before or after this block (weak ordering).
		x.Write(tx, x.Read(tx)+1)

		v, err := tx.Evaluate(f)
		if err != nil {
			return err
		}
		fmt.Println("future returned:", v)

		y.Write(tx, x.Read(tx))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	txn := stm.Begin()
	defer txn.Discard()
	fmt.Printf("x = %d (want 3)\ny = %d (want 3)\n", x.Read(txn), y.Read(txn))

	s := sys.Stats().Snapshot()
	fmt.Printf("futures submitted: %d, merged at submission: %d, at evaluation: %d\n",
		s.FuturesSubmitted, s.MergedAtSubmission, s.MergedAtEvaluation)
}
