// Cart: the e-commerce scenario of the paper's §3.3 — escaping futures under
// GAC (globally atomic continuation) semantics.
//
// Adding an item to the cart runs a transaction that updates the cart and
// spawns a future computing shipping costs across sellers. To hide latency,
// the add-to-cart transaction commits *without* waiting for the quote: under
// GAC the future escapes and is serialized only when the checkout
// transaction finally evaluates it. If any relevant price changed in
// between, the escaped future's reads fail validation and it transparently
// re-executes against current data — the whole purchase stays atomic.
package main

import (
	"fmt"
	"log"
	"time"

	"wtftm"
)

type quote struct {
	Seller string
	Cost   int
}

func main() {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO, Atomicity: wtftm.GAC})

	// Catalog: shipping fee per seller; the cart; the pending quote future.
	fees := map[string]wtftm.Box[int]{
		"acme":  wtftm.NewBoxNamed(stm, "fee.acme", 12),
		"bolt":  wtftm.NewBoxNamed(stm, "fee.bolt", 9),
		"corex": wtftm.NewBoxNamed(stm, "fee.corex", 15),
	}
	cart := wtftm.NewBoxNamed(stm, "cart", []string(nil))
	pendingQuote := wtftm.NewBoxNamed[*wtftm.Future](stm, "pendingQuote", nil)
	orderTotal := wtftm.NewBoxNamed(stm, "orderTotal", 0)

	// --- Transaction 1: add to cart; spawn the quote; commit immediately.
	start := time.Now()
	err := sys.Atomic(func(tx *wtftm.Tx) error {
		cart.Write(tx, append(cart.Read(tx), "widget"))

		f := tx.Submit(func(ftx *wtftm.Tx) (any, error) {
			// "Contact" each seller: slow, overlaps with the user's
			// shopping; reads the fees transactionally so a later fee
			// change invalidates (and re-runs) the quote.
			best := quote{Cost: 1 << 30}
			for seller, fee := range fees {
				time.Sleep(5 * time.Millisecond)
				if c := fee.Read(ftx); c < best.Cost {
					best = quote{Seller: seller, Cost: c}
				}
			}
			return best, nil
		})
		pendingQuote.Write(tx, f)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("add-to-cart committed in %v (did not wait for the quote)\n",
		time.Since(start).Round(time.Millisecond))

	// Meanwhile, a seller changes its shipping fee: the escaped future's
	// reads become stale, so checkout will transparently re-execute it.
	err = sys.Atomic(func(tx *wtftm.Tx) error {
		fees["bolt"].Write(tx, 20) // bolt is no longer the cheapest
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("seller 'bolt' raised its fee to 20 before checkout")

	// --- Transaction 2: checkout evaluates the escaped future.
	err = sys.Atomic(func(tx *wtftm.Tx) error {
		f := pendingQuote.Read(tx)
		v, err := tx.Evaluate(f)
		if err != nil {
			return err
		}
		q := v.(quote)
		fmt.Printf("checkout: best shipping is %q at %d\n", q.Seller, q.Cost)
		orderTotal.Write(tx, 100+q.Cost) // item price + shipping
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	txn := stm.Begin()
	defer txn.Discard()
	fmt.Printf("order total = %d (want 112: widget 100 + acme 12)\n", orderTotal.Read(txn))

	s := sys.Stats().Snapshot()
	fmt.Printf("escaped futures: %d, stale re-executions at evaluation: %d\n",
		s.EscapedFutures, s.EscapeReexecs)
}
