// Server: the wtfd quickstart — a bank ledger served over TCP. The example
// starts an in-process wtfd (internal/server), seeds a set of accounts, and
// runs concurrent transfer clients against it using the two MULTI shapes the
// protocol is built around:
//
//   - a MULTI of GETs reads a consistent snapshot of both balances (the
//     batch fans out over transactional futures on the server, one per
//     store shard, yet commits as one atomic transaction), and
//   - a MULTI of CASes applies the transfer all-or-nothing: if either
//     balance moved since the read, the whole batch aborts and the client
//     retries — classic optimistic concurrency, one round trip per attempt.
//
// Auditor clients meanwhile read every balance in a single MULTI and check
// the total never changes: the invariant that holds only because a batch is
// one transaction, not a sequence of point reads.
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"

	"wtftm"
	"wtftm/internal/client"
	"wtftm/internal/server"
	"wtftm/internal/wire"
)

const (
	accounts  = 16
	initBal   = 100
	tellers   = 4
	transfers = 200 // per teller
	audits    = 50
)

func key(i int) string { return fmt.Sprintf("acct-%04d", i) }

func main() {
	srv, err := server.New(server.Config{Ordering: wtftm.WO, Shards: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Drain()
	addr := srv.Addr().String()
	fmt.Printf("wtfd serving on %s (ordering=WO, shards=8)\n", addr)

	// Seed the ledger in one atomic batch.
	seed := client.New(client.Options{Addr: addr})
	defer seed.Close()
	var init []wire.Cmd
	for i := 0; i < accounts; i++ {
		init = append(init, wire.Put(key(i), []byte(strconv.Itoa(initBal))))
	}
	if _, applied, err := seed.Multi(init); err != nil || !applied {
		log.Fatalf("seeding: applied=%v err=%v", applied, err)
	}

	var (
		wg      sync.WaitGroup
		retries atomic.Int64
	)
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cl := client.New(client.Options{Addr: addr, Conns: 1})
			defer cl.Close()
			rnd := uint64(t)*0x9E3779B9 + 1
			for n := 0; n < transfers; n++ {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				from := int(rnd>>33) % accounts
				to := (from + 1 + int(rnd>>17)%(accounts-1)) % accounts
				for {
					// Atomic snapshot of both balances.
					reads, _, err := cl.Multi([]wire.Cmd{wire.Get(key(from)), wire.Get(key(to))})
					if err != nil {
						log.Fatal(err)
					}
					fb, _ := strconv.Atoi(string(reads[0].Val))
					tb, _ := strconv.Atoi(string(reads[1].Val))
					if fb == 0 {
						break // nothing to move
					}
					// All-or-nothing transfer: both CASes or neither.
					_, applied, err := cl.Multi([]wire.Cmd{
						wire.CAS(key(from), reads[0].Val, []byte(strconv.Itoa(fb-1))),
						wire.CAS(key(to), reads[1].Val, []byte(strconv.Itoa(tb+1))),
					})
					if err != nil {
						log.Fatal(err)
					}
					if applied {
						break
					}
					retries.Add(1) // a balance moved under us; reread and retry
				}
			}
		}(t)
	}

	// Auditors: the constant-sum check, concurrent with the tellers.
	audit := make([]wire.Cmd, accounts)
	for i := range audit {
		audit[i] = wire.Get(key(i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := client.New(client.Options{Addr: addr, Conns: 1})
		defer cl.Close()
		for n := 0; n < audits; n++ {
			results, applied, err := cl.Multi(audit)
			if err != nil || !applied {
				log.Fatalf("audit: applied=%v err=%v", applied, err)
			}
			total := 0
			for _, r := range results {
				v, _ := strconv.Atoi(string(r.Val))
				total += v
			}
			if total != accounts*initBal {
				log.Fatalf("audit %d: total = %d, want %d (torn snapshot!)", n, total, accounts*initBal)
			}
		}
	}()
	wg.Wait()

	stats, err := seed.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d transfers by %d tellers, %d CAS retries, %d audits — total stayed %d\n",
		tellers*transfers, tellers, retries.Load(), audits, accounts*initBal)
	fmt.Printf("server: %d requests, %d MULTI batches, %d future fan-outs\n",
		stats.Server.Requests, stats.Server.MultiBatches, stats.Server.FutureFanouts)
	fmt.Printf("engine: %d commits, %d futures; stm: %d commits (%d helped, queue hwm %d)\n",
		stats.Engine.TopCommits, stats.Engine.FuturesSubmitted,
		stats.STM.Commits, stats.STM.HelpedCommits, stats.STM.CommitQueueHWM)
}
