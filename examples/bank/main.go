// Bank: the log-replay workload of the paper's §5.3 (Figure 8). A daily log
// of transfer and getTotalAmount operations is replayed in chunks; each
// chunk is one top-level transaction, and every operation in it is delegated
// to a transactional future. getTotalAmount is the built-in sanity check: it
// must always observe the same total, whatever the interleaving.
//
// The example replays the same log twice — evaluating futures in spawning
// order and out of order (as they complete) — and prints the wall-clock
// difference: the long getTotalAmount operations straggle the in-order run.
package main

import (
	"fmt"
	"log"
	"time"

	"wtftm"
	"wtftm/internal/bank"
	"wtftm/internal/workload"
)

const (
	accounts = 512
	initBal  = 100
	chunkLen = 24
	window   = 4
)

func main() {
	rng := workload.NewRNG(2026)
	entries := bank.GenerateLog(rng, chunkLen, 70, 8, accounts)

	for _, mode := range []string{"in-order", "out-of-order"} {
		stm := wtftm.NewSTM()
		sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})
		b := bank.New(stm, accounts, initBal)

		start := time.Now()
		err := sys.Atomic(func(tx *wtftm.Tx) error {
			submit := func(e bank.LogEntry) *wtftm.Future {
				return tx.Submit(func(ftx *wtftm.Tx) (any, error) {
					// getTotalAmount reads every account: much slower than a
					// transfer (emulated with a small per-op delay).
					if e.Kind == bank.GetTotal {
						time.Sleep(3 * time.Millisecond)
					}
					return b.Apply(ftx, e, nil), nil
				})
			}
			if mode == "in-order" {
				return replayInOrder(tx, b, entries, submit)
			}
			return replayOutOfOrder(tx, b, entries, submit)
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		if got := b.Total(stm); got != b.ExpectedTotal() {
			log.Fatalf("%s: total = %d, want %d", mode, got, b.ExpectedTotal())
		}
		s := sys.Stats().Snapshot()
		fmt.Printf("%-13s replayed %d ops in %7v  (futures: %d, merged@submission: %d, merged@evaluation: %d)\n",
			mode, len(entries), elapsed.Round(time.Millisecond),
			s.FuturesSubmitted, s.MergedAtSubmission, s.MergedAtEvaluation)
	}
	fmt.Println("sanity check passed: every getTotalAmount observed the invariant total")
}

func check(b *bank.Bank, v any) error {
	if n := v.(int); n != 0 && n != b.ExpectedTotal() {
		return fmt.Errorf("getTotalAmount = %d, want %d", n, b.ExpectedTotal())
	}
	return nil
}

func replayInOrder(tx *wtftm.Tx, b *bank.Bank, entries []bank.LogEntry, submit func(bank.LogEntry) *wtftm.Future) error {
	var fifo []*wtftm.Future
	next := 0
	for next < len(entries) && len(fifo) < window {
		fifo = append(fifo, submit(entries[next]))
		next++
	}
	for len(fifo) > 0 {
		v, err := tx.Evaluate(fifo[0])
		if err != nil {
			return err
		}
		if err := check(b, v); err != nil {
			return err
		}
		fifo = fifo[1:]
		if next < len(entries) {
			fifo = append(fifo, submit(entries[next]))
			next++
		}
	}
	return nil
}

func replayOutOfOrder(tx *wtftm.Tx, b *bank.Bank, entries []bank.LogEntry, submit func(bank.LogEntry) *wtftm.Future) error {
	completions := make(chan *wtftm.Future, len(entries))
	launch := func(e bank.LogEntry) {
		f := submit(e)
		go func() {
			<-f.Done()
			completions <- f
		}()
	}
	next, inFlight := 0, 0
	for next < len(entries) && inFlight < window {
		launch(entries[next])
		next++
		inFlight++
	}
	for inFlight > 0 {
		f := <-completions
		v, err := tx.Evaluate(f)
		if err != nil {
			return err
		}
		if err := check(b, v); err != nil {
			return err
		}
		inFlight--
		if next < len(entries) {
			launch(entries[next])
			next++
			inFlight++
		}
	}
	return nil
}
