// Vacation: the STAMP-derived travel-agency workload of the paper's §5.3
// (Figure 9). Several clients run MakeReservation transactions whose search
// operations are divided among transactional futures; 10% of the futures
// emulate a slow remote-database lookup. Weakly ordered futures let each
// client evaluate results as they arrive instead of stalling behind the
// straggler, and the database invariants (capacity, billing) hold under all
// the concurrency.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"wtftm"
	"wtftm/internal/vacation"
	"wtftm/internal/workload"
)

const (
	relations    = 256
	customers    = 32
	clients      = 4
	reservations = 6 // per client
	futuresPer   = 3
	queriesPer   = 8 // per future
)

func main() {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})
	mgr := vacation.NewManager(stm, relations, customers, 42)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(client)*7919 + 1)
			for r := 0; r < reservations; r++ {
				seed := rng.Uint64()
				err := sys.Atomic(func(tx *wtftm.Tx) error {
					// Fan the searches out over futures.
					futs := make([]*wtftm.Future, futuresPer)
					for i := range futs {
						i := i
						futs[i] = tx.Submit(func(ftx *wtftm.Tx) (any, error) {
							fr := workload.NewRNG(seed + uint64(i))
							if fr.Intn(10) == 0 {
								time.Sleep(10 * time.Millisecond) // remote DB
							}
							return mgr.SearchBest(ftx, fr, queriesPer, relations/4, nil), nil
						})
					}
					// Merge the per-future bests and book them.
					var best vacation.BestSet
					for _, f := range futs {
						v, err := tx.Evaluate(f)
						if err != nil {
							return err
						}
						best = vacation.MergeBest(best, v.(vacation.BestSet))
					}
					booked := 0
					for k := range best {
						if mgr.Reserve(tx, best[k], client) {
							booked++
						}
					}
					if booked == 0 {
						return fmt.Errorf("client %d found nothing to book", client)
					}
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()

	if err := mgr.CheckInvariants(stm); err != nil {
		log.Fatal(err)
	}
	s := sys.Stats().Snapshot()
	fmt.Printf("%d clients made %d reservations in %v\n",
		clients, clients*reservations, time.Since(start).Round(time.Millisecond))
	fmt.Printf("top-level commits: %d, conflicts retried: %d\n", s.TopCommits, s.TopConflict)
	fmt.Printf("futures: %d (merged at submission %d, at evaluation %d, re-executed %d)\n",
		s.FuturesSubmitted, s.MergedAtSubmission, s.MergedAtEvaluation, s.FutureReexecutions)
	fmt.Println("database invariants hold: capacity conserved, bills match reservations")
}
