// Events: the event-driven pattern the paper's conclusion motivates —
// "a novel class of event-driven applications which transparently support
// concurrent manipulations of shared state via the abstraction of
// transactional futures".
//
// Producers append events to a transactional queue; a dispatcher drains
// batches, fanning the processing of each batch out over transactional
// futures that update a shared, transactional word-count index and a
// sharded counter — all atomically per batch: either a batch's whole effect
// becomes visible or none of it.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"wtftm"
	"wtftm/tstruct"
)

var feed = []string{
	"transactional futures compose atomic parallel tasks",
	"futures escape transactions under globally atomic continuations",
	"weakly ordered futures avoid continuation aborts",
	"strongly ordered futures behave like sequential programs",
	"parallel nesting is the blocking restriction of futures",
	"atomic batches make event processing exactly once",
}

func main() {
	stm := wtftm.NewSTM()
	sys := wtftm.NewSystem(stm, wtftm.Options{Ordering: wtftm.WO})

	queue := tstruct.NewQueue(stm)
	index := tstruct.NewMap(stm, 64) // word -> count
	processed := tstruct.NewCounter(stm, 8)

	// Producers: each event arrives in its own small transaction.
	var prod sync.WaitGroup
	for p := 0; p < 3; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			for i := p; i < len(feed); i += 3 {
				ev := feed[i]
				if err := sys.Atomic(func(tx *wtftm.Tx) error {
					queue.Enqueue(tx, ev)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
		}(p)
	}
	prod.Wait()

	// Dispatcher: drain in batches of 2; process each batch's events in
	// parallel futures, atomically with the dequeue.
	batches := 0
	for {
		var emptied bool
		err := sys.Atomic(func(tx *wtftm.Tx) error {
			var events []string
			for len(events) < 2 {
				v, ok := queue.Dequeue(tx)
				if !ok {
					break
				}
				events = append(events, v.(string))
			}
			if len(events) == 0 {
				emptied = true
				return nil
			}
			futs := make([]*wtftm.Future, len(events))
			for i, ev := range events {
				ev := ev
				i := i
				futs[i] = tx.Submit(func(ftx *wtftm.Tx) (any, error) {
					for _, w := range strings.Fields(ev) {
						cur, _ := index.Get(ftx, w)
						if cur == nil {
							cur = 0
						}
						index.Put(ftx, w, cur.(int)+1)
					}
					processed.Add(ftx, i, 1)
					return len(strings.Fields(ev)), nil
				})
			}
			for _, f := range futs {
				if _, err := tx.Evaluate(f); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if emptied {
			break
		}
		batches++
	}

	// Report.
	txn := stm.Begin()
	defer txn.Discard()
	type wc struct {
		w string
		n int
	}
	var words []wc
	index.ForEach(txn, func(k string, v any) bool {
		words = append(words, wc{k, v.(int)})
		return true
	})
	sort.Slice(words, func(i, j int) bool {
		if words[i].n != words[j].n {
			return words[i].n > words[j].n
		}
		return words[i].w < words[j].w
	})
	fmt.Printf("processed %d events in %d atomic batches\n", processed.Sum(txn), batches)
	fmt.Println("top words:")
	for _, w := range words[:5] {
		fmt.Printf("  %-15s %d\n", w.w, w.n)
	}
	if queue.Len(txn) != 0 {
		log.Fatal("queue not drained")
	}
	if processed.Sum(txn) != len(feed) {
		log.Fatalf("processed %d events, want %d (exactly-once violated)", processed.Sum(txn), len(feed))
	}
	fmt.Println("exactly-once batch processing verified")
}
